//! Regions: the paper's physical storage structure.
//!
//! A region owns a set of flash dies.  Within a region, writes are striped
//! round-robin over the dies (each die maintains its own append point), so
//! a region with more dies offers more I/O parallelism.  All space
//! reclamation (GC) and wear leveling happen region-locally.

use flash_sim::{BlockAddr, DieId, DieLoad, FlashBackend, FlashGeometry, PageAddr, ServiceClass};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::config::{NoFtlConfig, WearLevelingPolicy};
use crate::placement::PlacementPolicyKind;
use crate::stats::RegionStats;
use crate::wear::{pick_free_block, FreeBlockCandidate};

/// Identifier of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// Declarative description of a region, mirroring the paper's DDL:
///
/// ```sql
/// CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
/// ```
///
/// The storage manager resolves the spec against the device geometry and
/// the pool of unassigned dies when the region is created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (unique).
    pub name: String,
    /// Explicit number of dies to assign; takes precedence over the limits
    /// below when set.
    pub die_count: Option<u32>,
    /// Upper bound on the number of chips the region may span.
    pub max_chips: Option<u32>,
    /// Upper bound on the number of channels the region may span.
    pub max_channels: Option<u32>,
    /// Upper bound on the region's raw capacity in bytes.
    pub max_size_bytes: Option<u64>,
    /// Die-level write placement override for this region; `None` falls
    /// back to [`NoFtlConfig::placement`].  Persisted through region
    /// checkpoints, so a remounted region keeps its policy.
    pub placement: Option<PlacementPolicyKind>,
    /// I/O service class override for this region; `None` falls back to
    /// [`NoFtlConfig::service_class`].  Persisted through region
    /// checkpoints like the placement override.
    pub service_class: Option<ServiceClass>,
}

impl RegionSpec {
    /// A spec with only a name; limits can be added with the builder methods.
    pub fn named(name: impl Into<String>) -> Self {
        RegionSpec {
            name: name.into(),
            die_count: None,
            max_chips: None,
            max_channels: None,
            max_size_bytes: None,
            placement: None,
            service_class: None,
        }
    }

    /// Request an explicit number of dies.
    pub fn with_die_count(mut self, dies: u32) -> Self {
        self.die_count = Some(dies);
        self
    }

    /// Limit the number of chips the region spans (paper: `MAX_CHIPS`).
    pub fn with_max_chips(mut self, chips: u32) -> Self {
        self.max_chips = Some(chips);
        self
    }

    /// Limit the number of channels the region spans (paper: `MAX_CHANNELS`).
    pub fn with_max_channels(mut self, channels: u32) -> Self {
        self.max_channels = Some(channels);
        self
    }

    /// Limit the region's raw size in bytes (paper: `MAX_SIZE`).
    pub fn with_max_size_bytes(mut self, bytes: u64) -> Self {
        self.max_size_bytes = Some(bytes);
        self
    }

    /// Override the die-level write placement policy for this region
    /// (DDL: `PLACEMENT=QUEUE_AWARE`).
    pub fn with_placement(mut self, placement: PlacementPolicyKind) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Override the I/O service class for this region (DDL:
    /// `CLASS=LATENCY`).  The class rides on every flash command the
    /// region submits and drives the device arbiter's admission.
    pub fn with_service_class(mut self, class: ServiceClass) -> Self {
        self.service_class = Some(class);
        self
    }

    /// Resolve the spec to a concrete number of dies for `geometry`.
    ///
    /// The most restrictive of the given limits wins; a spec with no limits
    /// at all resolves to a single die.
    pub fn resolve_die_count(&self, geometry: &FlashGeometry) -> u32 {
        if let Some(n) = self.die_count {
            return n.max(1);
        }
        let mut bound = u32::MAX;
        if let Some(chips) = self.max_chips {
            bound = bound.min(chips.saturating_mul(geometry.dies_per_chip));
        }
        if let Some(channels) = self.max_channels {
            bound = bound.min(channels.saturating_mul(geometry.dies_per_channel()));
        }
        if let Some(size) = self.max_size_bytes {
            let per_die = geometry.die_capacity_bytes().max(1);
            bound = bound.min(size.div_ceil(per_die) as u32);
        }
        if bound == u32::MAX {
            1
        } else {
            bound.max(1)
        }
    }
}

/// Allocation state of one die inside a region.
#[derive(Debug)]
pub(crate) struct RegionDie {
    /// The die's global id.
    pub die: DieId,
    /// Erased blocks available for allocation.
    pub free_blocks: Vec<BlockAddr>,
    /// Host-write frontier: (block, next page index).
    pub active: Option<(BlockAddr, u32)>,
    /// GC-destination frontier: (block, next page index).
    pub gc_active: Option<(BlockAddr, u32)>,
    /// Blocks with data (open or full), i.e. GC candidates once full.
    pub used_blocks: Vec<BlockAddr>,
}

impl RegionDie {
    /// Build the allocation state for a die, treating every non-bad block
    /// of the die as free.  The caller must ensure the die actually is
    /// erased (true at device start-up and after a die is migrated out of
    /// another region).
    pub(crate) fn new(device: &dyn FlashBackend, die: DieId) -> Self {
        let geo = device.geometry();
        let mut free_blocks = Vec::with_capacity(geo.blocks_per_die() as usize);
        for plane in 0..geo.planes_per_die {
            for block in 0..geo.blocks_per_plane {
                let addr = BlockAddr::new(die, plane, block);
                if let Ok(info) = device.block_info(addr) {
                    if info.state != flash_sim::BlockState::Bad {
                        free_blocks.push(addr);
                    }
                }
            }
        }
        RegionDie { die, free_blocks, active: None, gc_active: None, used_blocks: Vec::new() }
    }

    /// Rebuild the allocation state of a die from the physical block
    /// states found on a remounted device: erased blocks go back to the
    /// free pool, partially programmed blocks become write frontiers
    /// (continuing at their hardware write pointer) and full blocks become
    /// GC candidates.  Bad blocks are dropped from tracking.
    pub(crate) fn rebuild(device: &dyn FlashBackend, die: DieId) -> Self {
        let geo = device.geometry();
        let mut out = RegionDie {
            die,
            free_blocks: Vec::new(),
            active: None,
            gc_active: None,
            used_blocks: Vec::new(),
        };
        for plane in 0..geo.planes_per_die {
            for block in 0..geo.blocks_per_plane {
                let addr = BlockAddr::new(die, plane, block);
                let Ok(info) = device.block_info(addr) else { continue };
                match info.state {
                    flash_sim::BlockState::Bad => {}
                    flash_sim::BlockState::Free => out.free_blocks.push(addr),
                    flash_sim::BlockState::Open => {
                        // Re-open at most one host and one GC frontier; any
                        // further partially written blocks are treated as
                        // used (their remaining pages are reclaimed when GC
                        // erases them).
                        if out.active.is_none() {
                            out.active = Some((addr, info.write_ptr));
                        } else if out.gc_active.is_none() {
                            out.gc_active = Some((addr, info.write_ptr));
                        } else {
                            out.used_blocks.push(addr);
                        }
                    }
                    flash_sim::BlockState::Full => out.used_blocks.push(addr),
                }
            }
        }
        out
    }

    /// Total usable blocks currently tracked by this die (free + used +
    /// frontiers).
    pub(crate) fn tracked_blocks(&self) -> usize {
        self.free_blocks.len()
            + self.used_blocks.len()
            + usize::from(self.active.is_some())
            + usize::from(self.gc_active.is_some())
    }

    /// Pick and open a fresh block for the host frontier.
    pub(crate) fn open_host_block(
        &mut self,
        device: &dyn FlashBackend,
        policy: WearLevelingPolicy,
    ) -> bool {
        let cands: Vec<FreeBlockCandidate> = self
            .free_blocks
            .iter()
            .enumerate()
            .map(|(slot, b)| FreeBlockCandidate {
                slot,
                erase_count: device.block_info(*b).map(|i| i.erase_count).unwrap_or(0),
            })
            .collect();
        match pick_free_block(policy, &cands) {
            Some(slot) => {
                let block = self.free_blocks.swap_remove(slot);
                self.active = Some((block, 0));
                true
            }
            None => false,
        }
    }

    /// Pick and open a fresh block for the GC frontier.
    pub(crate) fn open_gc_block(
        &mut self,
        device: &dyn FlashBackend,
        policy: WearLevelingPolicy,
    ) -> bool {
        let cands: Vec<FreeBlockCandidate> = self
            .free_blocks
            .iter()
            .enumerate()
            .map(|(slot, b)| FreeBlockCandidate {
                slot,
                erase_count: device.block_info(*b).map(|i| i.erase_count).unwrap_or(0),
            })
            .collect();
        match pick_free_block(policy, &cands) {
            Some(slot) => {
                let block = self.free_blocks.swap_remove(slot);
                self.gc_active = Some((block, 0));
                true
            }
            None => false,
        }
    }

    /// Next page of the host frontier, opening a new block when necessary.
    /// Returns `None` when the die has no free blocks left.
    pub(crate) fn next_host_page(
        &mut self,
        device: &dyn FlashBackend,
        policy: WearLevelingPolicy,
        pages_per_block: u32,
    ) -> Option<PageAddr> {
        loop {
            match self.active {
                Some((block, next)) if next < pages_per_block => {
                    self.active = Some((block, next + 1));
                    return Some(block.page(next));
                }
                Some((block, _)) => {
                    self.used_blocks.push(block);
                    self.active = None;
                }
                None => {
                    if !self.open_host_block(device, policy) {
                        return None;
                    }
                }
            }
        }
    }

    /// Next page of the GC frontier, opening a new block when necessary.
    pub(crate) fn next_gc_page(
        &mut self,
        device: &dyn FlashBackend,
        policy: WearLevelingPolicy,
        pages_per_block: u32,
    ) -> Option<PageAddr> {
        loop {
            match self.gc_active {
                Some((block, next)) if next < pages_per_block => {
                    self.gc_active = Some((block, next + 1));
                    return Some(block.page(next));
                }
                Some((block, _)) => {
                    self.used_blocks.push(block);
                    self.gc_active = None;
                }
                None => {
                    if !self.open_gc_block(device, policy) {
                        return None;
                    }
                }
            }
        }
    }
}

/// Read-only snapshot of a region's configuration and occupancy, exposed
/// through [`crate::NoFtl::region_info`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionInfo {
    /// Region id.
    pub id: RegionId,
    /// Region name.
    pub name: String,
    /// The spec the region was created from.
    pub spec: RegionSpec,
    /// Dies currently owned by the region.
    pub dies: Vec<DieId>,
    /// Objects currently placed in the region (ids).
    pub objects: Vec<u32>,
    /// Erased blocks currently available across the region's dies.
    pub free_blocks: u64,
    /// Blocks tracked by the region in total (free + in use + frontiers).
    pub tracked_blocks: u64,
    /// Raw capacity in pages.
    pub capacity_pages: u64,
    /// Capacity available to objects after GC headroom.
    pub effective_capacity_pages: u64,
}

/// Runtime state of a region.
#[derive(Debug)]
pub(crate) struct RegionRuntime {
    /// Region id.
    pub id: RegionId,
    /// Region name.
    pub name: String,
    /// The spec the region was created from.
    pub spec: RegionSpec,
    /// Per-die allocation state.
    pub dies: Vec<RegionDie>,
    /// Round-robin pointer for write striping.
    pub next_die: usize,
    /// Objects currently placed in this region (by id).
    pub objects: Vec<u32>,
    /// Monotonic invalidation sequence (region-local GC "age" clock).
    pub invalidate_seq: u64,
    /// Last invalidation sequence per block.
    pub block_invalidate_seq: HashMap<(u32, u32, u32), u64>,
    /// Region-level statistics.
    pub stats: RegionStats,
    /// Reusable buffer for the placement policy's probe order, so the
    /// per-write allocation path performs no heap allocation.
    pub probe_scratch: Vec<usize>,
    /// Reusable buffer for per-die load snapshots (queue-aware policies).
    pub load_scratch: Vec<DieLoad>,
}

impl RegionRuntime {
    pub(crate) fn new(
        id: RegionId,
        spec: RegionSpec,
        device: &dyn FlashBackend,
        dies: Vec<DieId>,
    ) -> Self {
        let name = spec.name.clone();
        RegionRuntime {
            id,
            name,
            spec,
            dies: dies.into_iter().map(|d| RegionDie::new(device, d)).collect(),
            next_die: 0,
            objects: Vec::new(),
            invalidate_seq: 0,
            block_invalidate_seq: HashMap::new(),
            stats: RegionStats::default(),
            probe_scratch: Vec::new(),
            load_scratch: Vec::new(),
        }
    }

    /// The I/O service class in effect for this region: the spec's
    /// override or the manager default.
    pub(crate) fn service_class(&self, config: &NoFtlConfig) -> ServiceClass {
        self.spec.service_class.unwrap_or(config.service_class)
    }

    /// The die-level placement policy in effect for this region: the
    /// spec's override when present, the manager-wide default otherwise.
    pub(crate) fn placement_kind(&self, config: &NoFtlConfig) -> PlacementPolicyKind {
        self.spec.placement.unwrap_or(config.placement)
    }

    /// Record that a page in `block` has been invalidated (for cost-benefit
    /// GC aging).
    pub(crate) fn record_invalidation(&mut self, ppa: PageAddr) {
        self.invalidate_seq += 1;
        let seq = self.invalidate_seq;
        self.block_invalidate_seq.insert((ppa.die.0, ppa.plane, ppa.block), seq);
    }

    /// The die ids owned by the region.
    pub(crate) fn die_ids(&self) -> Vec<DieId> {
        self.dies.iter().map(|d| d.die).collect()
    }

    /// Number of free blocks summed over all dies of the region.
    pub(crate) fn total_free_blocks(&self) -> usize {
        self.dies.iter().map(|d| d.free_blocks.len()).sum()
    }

    /// Raw capacity of the region in pages, given the device geometry.
    pub(crate) fn capacity_pages(&self, geo: &FlashGeometry) -> u64 {
        self.dies.len() as u64 * geo.pages_per_die()
    }

    /// Effective capacity available to objects after reserving GC headroom.
    pub(crate) fn effective_capacity_pages(
        &self,
        geo: &FlashGeometry,
        config: &NoFtlConfig,
    ) -> u64 {
        let raw = self.capacity_pages(geo);
        (raw as f64 * (1.0 - config.gc_headroom)).floor() as u64
    }

    /// Build the public snapshot of this region.
    pub(crate) fn info(&self, geo: &FlashGeometry, config: &NoFtlConfig) -> RegionInfo {
        RegionInfo {
            id: self.id,
            name: self.name.clone(),
            spec: self.spec.clone(),
            dies: self.die_ids(),
            objects: self.objects.clone(),
            free_blocks: self.total_free_blocks() as u64,
            tracked_blocks: self.dies.iter().map(|d| d.tracked_blocks() as u64).sum(),
            capacity_pages: self.capacity_pages(geo),
            effective_capacity_pages: self.effective_capacity_pages(geo, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{DeviceBuilder, FlashGeometry};

    #[test]
    fn spec_builder_and_resolution() {
        let geo = FlashGeometry::edbt_paper(); // 64 dies, 4 per chip, 16 per channel
        let spec = RegionSpec::named("rgHotTbl")
            .with_max_chips(8)
            .with_max_channels(4)
            .with_max_size_bytes(1280 * 1024 * 1024);
        // MAX_CHIPS=8 → 32 dies; MAX_CHANNELS=4 → 64 dies;
        // MAX_SIZE=1280M with 256 MiB dies → 5 dies; most restrictive wins.
        assert_eq!(spec.resolve_die_count(&geo), 5);
        assert_eq!(RegionSpec::named("x").resolve_die_count(&geo), 1);
        assert_eq!(RegionSpec::named("x").with_die_count(11).resolve_die_count(&geo), 11);
        assert_eq!(RegionSpec::named("x").with_max_chips(2).resolve_die_count(&geo), 8);
        assert_eq!(RegionSpec::named("x").with_max_channels(1).resolve_die_count(&geo), 16);
    }

    #[test]
    fn die_count_zero_resolves_to_one() {
        let geo = FlashGeometry::small_test();
        assert_eq!(RegionSpec::named("x").with_die_count(0).resolve_die_count(&geo), 1);
    }

    #[test]
    fn region_die_allocation_walks_blocks_sequentially() {
        let device = DeviceBuilder::new(FlashGeometry::small_test()).build();
        let geo = *device.geometry();
        let mut die = RegionDie::new(&device, DieId(0));
        let initial_blocks = die.free_blocks.len();
        assert_eq!(initial_blocks, geo.blocks_per_die() as usize);
        let p0 =
            die.next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        let p1 =
            die.next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        assert_eq!(p0.block(), p1.block());
        assert_eq!(p0.page + 1, p1.page);
        // Exhaust the first block; the next page must come from a new block.
        for _ in 2..geo.pages_per_block {
            die.next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        }
        let p_next =
            die.next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        assert_ne!(p_next.block(), p0.block());
        assert_eq!(die.used_blocks.len(), 1);
        assert_eq!(die.tracked_blocks(), initial_blocks);
    }

    #[test]
    fn region_die_exhaustion_returns_none() {
        let device = DeviceBuilder::new(FlashGeometry::small_test()).build();
        let geo = *device.geometry();
        let mut die = RegionDie::new(&device, DieId(1));
        let total_pages = geo.pages_per_die();
        for _ in 0..total_pages {
            assert!(die
                .next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block)
                .is_some());
        }
        assert!(die
            .next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block)
            .is_none());
    }

    #[test]
    fn gc_frontier_is_separate_from_host_frontier() {
        let device = DeviceBuilder::new(FlashGeometry::small_test()).build();
        let geo = *device.geometry();
        let mut die = RegionDie::new(&device, DieId(0));
        let host =
            die.next_host_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        let gc =
            die.next_gc_page(&device, WearLevelingPolicy::Dynamic, geo.pages_per_block).unwrap();
        assert_ne!(host.block(), gc.block(), "host and GC data never share a block");
    }

    #[test]
    fn region_runtime_capacity_accounting() {
        let device = DeviceBuilder::new(FlashGeometry::small_test()).build();
        let geo = *device.geometry();
        let rt = RegionRuntime::new(
            RegionId(0),
            RegionSpec::named("r"),
            &device,
            vec![DieId(0), DieId(1)],
        );
        assert_eq!(rt.capacity_pages(&geo), 2 * geo.pages_per_die());
        let config = NoFtlConfig { gc_headroom: 0.5, ..NoFtlConfig::default() };
        assert_eq!(rt.effective_capacity_pages(&geo, &config), geo.pages_per_die());
        assert_eq!(rt.die_ids(), vec![DieId(0), DieId(1)]);
        assert_eq!(rt.total_free_blocks(), 2 * geo.blocks_per_die() as usize);
    }

    #[test]
    fn invalidation_sequence_advances() {
        let device = DeviceBuilder::new(FlashGeometry::small_test()).build();
        let mut rt =
            RegionRuntime::new(RegionId(0), RegionSpec::named("r"), &device, vec![DieId(0)]);
        let p = PageAddr::new(DieId(0), 0, 3, 1);
        rt.record_invalidation(p);
        rt.record_invalidation(p);
        assert_eq!(rt.invalidate_seq, 2);
        assert_eq!(rt.block_invalidate_seq.get(&(0, 0, 3)), Some(&2));
    }
}
