//! Property tests for the log-bucketed histogram: bucket boundaries,
//! merge associativity and percentile monotonicity.

use proptest::prelude::*;

use noftl_obs::{HistogramSnapshot, MetricsRegistry, Unit};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let r = MetricsRegistry::new();
    let h = r.histogram("prop.h", Unit::Count);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every recorded value lands in a bucket whose `[lo, hi]` range
    /// contains it: the reported min/max always bound every percentile,
    /// and a single-value histogram reports that value within the 1/8
    /// relative quantization error.
    #[test]
    fn bucket_boundaries_contain_the_value(v in any::<u64>()) {
        let s = snapshot_of(&[v]);
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.min, v);
        prop_assert_eq!(s.max, v);
        let (lo, hi, n) = s.nonzero_buckets().next().expect("one bucket populated");
        prop_assert_eq!(n, 1);
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
        // hi - lo is at most 1/8 of lo for octave buckets (exact below 16).
        if lo >= 16 {
            prop_assert!(hi - lo <= lo / 8, "bucket [{}, {}] too wide", lo, hi);
        } else {
            prop_assert_eq!(lo, hi);
        }
        // The only percentile of a single observation is the observation
        // (clamped to the exactly-tracked max).
        prop_assert_eq!(s.percentile(0.5), v);
        prop_assert_eq!(s.percentile(1.0), v);
    }

    /// Merging is associative and commutative: any grouping of three
    /// shards produces the same aggregate.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a + (b + c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        // c + b + a (commuted)
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count, rev.count);
        prop_assert_eq!(left.sum, rev.sum);
        prop_assert_eq!(left.max, rev.max);
        prop_assert_eq!(left.min, rev.min);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.percentile(q), right.percentile(q));
            prop_assert_eq!(left.percentile(q), rev.percentile(q));
        }
        // Merging an identity element changes nothing.
        let mut with_empty = left.clone();
        with_empty.merge(&HistogramSnapshot::empty("prop.h", Unit::Count));
        prop_assert_eq!(with_empty, left);
    }

    /// Percentiles are monotone in the quantile and bounded by the true
    /// extremes.
    #[test]
    fn percentiles_are_monotone(
        values in prop::collection::vec(0u64..10_000_000, 1..120),
        raw_qs in prop::collection::vec(0u64..1001, 2..12),
    ) {
        let s = snapshot_of(&values);
        let mut qs: Vec<f64> = raw_qs.iter().map(|&q| q as f64 / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        let mut last = 0u64;
        for &q in &qs {
            let p = s.percentile(q);
            prop_assert!(p >= last, "p({}) = {} < previous {}", q, p, last);
            last = p;
        }
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        prop_assert!(s.percentile(1.0) == hi, "p100 must be the exact max");
        prop_assert!(s.percentile(0.0) >= lo, "p0 below the true minimum");
        prop_assert!(s.percentile(0.5) <= hi);
    }
}
