//! The disabled fast path must be free: no allocation on any disabled
//! counter/gauge/histogram/tracer call.
//!
//! A counting global allocator wraps `System`; the test registers every
//! handle kind up front (registration may allocate), then drives the
//! disabled paths hard and asserts the allocation count did not move.
//! CI runs this in `--release`, where the claim matters; the invariant
//! is structural (early return before any argument is materialized), so
//! it holds in debug builds too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use noftl_obs::{MetricsRegistry, Unit};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_paths_do_not_allocate() {
    let registry = MetricsRegistry::disabled();
    let counter = registry.counter("na.counter");
    let gauge = registry.gauge("na.gauge");
    let hist = registry.histogram("na.hist_ns", Unit::SimNanos);
    let tracer = registry.tracer();
    assert!(!registry.is_enabled());
    assert!(!tracer.is_enabled());

    let before = ALLOCATIONS.load(Relaxed);
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i);
        gauge.set_max(i);
        hist.record(i * 37);
        tracer.span("na", "span", 0, i, i + 5, &[("pages", i)]);
        tracer.instant("na", "tick", 1, i, &[]);
    }
    let after = ALLOCATIONS.load(Relaxed);

    assert_eq!(after - before, 0, "disabled observability path allocated");
    assert_eq!(counter.get(), 0);
    assert_eq!(hist.count(), 0);
    assert!(tracer.is_empty());
}

#[test]
fn enabled_counters_and_histograms_stay_allocation_free_too() {
    // Stronger than the tentpole asks: even when *enabled*, counter,
    // gauge and histogram updates are pure atomics (only the tracer
    // allocates, for its event payloads).
    let registry = MetricsRegistry::new();
    let counter = registry.counter("na.on.counter");
    let gauge = registry.gauge("na.on.gauge");
    let hist = registry.histogram("na.on.hist_ns", Unit::SimNanos);

    let before = ALLOCATIONS.load(Relaxed);
    for i in 0..10_000u64 {
        counter.inc();
        gauge.set_max(i);
        hist.record(i * 91);
    }
    let after = ALLOCATIONS.load(Relaxed);

    assert_eq!(after - before, 0, "enabled metric update allocated");
    assert_eq!(counter.get(), 10_000);
    assert_eq!(hist.count(), 10_000);
}
