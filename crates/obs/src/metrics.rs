//! The metrics registry: named counters, gauges and histograms.
//!
//! A [`MetricsRegistry`] is a name → handle table.  Registration
//! (`counter`/`gauge`/`histogram`) is the cold path and takes a plain
//! `std::sync::RwLock`; the handles it returns are `Arc`s over atomics,
//! so every *update* is lock-free and never participates in the
//! workspace's tracked lock order (`flash_sim::lockorder`).  All handles
//! share the registry's enabled flag: when the registry is disabled,
//! every update is one relaxed atomic load and an untaken branch — the
//! fast path the release-mode no-allocation test pins down.
//!
//! Naming scheme: dotted lowercase `layer.component.metric`, with a unit
//! suffix on time-valued metrics (`flash.queue.read.wait_ns`).  Stacks
//! built by `DeviceBuilder` default to a fresh registry per device (so
//! tests and benches stay isolated); [`global()`] offers the
//! process-wide instance for components that want to share one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::tracer::Tracer;

/// Shared on/off switch: one per registry, referenced by every handle.
#[derive(Debug)]
pub struct Flag(AtomicBool);

impl Flag {
    pub(crate) fn new(v: bool) -> Self {
        Flag(AtomicBool::new(v))
    }

    /// Relaxed read — the only cost a disabled metric pays.
    #[inline]
    pub fn get(&self) -> bool {
        self.0.load(Relaxed)
    }

    pub(crate) fn set(&self, v: bool) {
        self.0.store(v, Relaxed);
    }
}

/// Unit tag carried by histograms, so exporters and the perf harness
/// know how to scale values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Simulated-clock nanoseconds (deterministic across runs).
    SimNanos,
    /// Wall-clock nanoseconds (machine-dependent).
    WallNanos,
    /// Dimensionless counts (e.g. window occupancy, probe counts).
    Count,
}

impl Unit {
    /// Short tag used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::SimNanos => "sim_ns",
            Unit::WallNanos => "wall_ns",
            Unit::Count => "count",
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

#[derive(Debug)]
struct CounterInner {
    value: AtomicU64,
    enabled: Arc<Flag>,
}

impl Counter {
    fn new(enabled: Arc<Flag>) -> Self {
        Counter { inner: Arc::new(CounterInner { value: AtomicU64::new(0), enabled }) }
    }

    /// Add `n`.  Lock-free; a no-op when the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.inner.enabled.get() {
            self.inner.value.fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Relaxed)
    }
}

/// A last-value / high-water-mark gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<CounterInner>,
}

impl Gauge {
    fn new(enabled: Arc<Flag>) -> Self {
        Gauge { inner: Arc::new(CounterInner { value: AtomicU64::new(0), enabled }) }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.inner.enabled.get() {
            self.inner.value.store(v, Relaxed);
        }
    }

    /// Raise the value to `v` if larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.inner.enabled.get() {
            self.inner.value.fetch_max(v, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Relaxed)
    }
}

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

/// A registry of named metrics plus an event [`Tracer`].
///
/// Components get-or-register handles by name and keep them; distinct
/// components naming the same metric share the underlying atomics, which
/// is how per-stack aggregation works without any plumbing beyond
/// sharing the `Arc<MetricsRegistry>` itself.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<Flag>,
    tables: RwLock<Tables>,
    tracer: Tracer,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry with tracing off (the tracer has its own
    /// switch; see [`Tracer::set_enabled`]).
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: Arc::new(Flag::new(true)),
            tables: RwLock::new(Tables::default()),
            tracer: Tracer::default(),
        }
    }

    /// A registry whose every update is the disabled fast path.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Toggle metric recording (existing handles observe the change).
    pub fn set_enabled(&self, v: bool) {
        self.enabled.set(v);
    }

    /// Whether metric recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// The registry's event tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.read_tables(|t| t.counters.get(name).cloned()) {
            return c;
        }
        let mut t = self.tables.write().unwrap_or_else(PoisonError::into_inner);
        t.counters
            .entry(name.to_string())
            .or_insert_with(|| Counter::new(self.enabled.clone()))
            .clone()
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.read_tables(|t| t.gauges.get(name).cloned()) {
            return g;
        }
        let mut t = self.tables.write().unwrap_or_else(PoisonError::into_inner);
        t.gauges.entry(name.to_string()).or_insert_with(|| Gauge::new(self.enabled.clone())).clone()
    }

    /// Get or register a histogram.  The unit is fixed at first
    /// registration; later callers get the existing handle regardless of
    /// the unit they pass.
    pub fn histogram(&self, name: &str, unit: Unit) -> Histogram {
        if let Some(h) = self.read_tables(|t| t.hists.get(name).cloned()) {
            return h;
        }
        let mut t = self.tables.write().unwrap_or_else(PoisonError::into_inner);
        t.hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(name, unit, self.enabled.clone()))
            .clone()
    }

    fn read_tables<R>(&self, f: impl FnOnce(&Tables) -> R) -> R {
        let t = self.tables.read().unwrap_or_else(PoisonError::into_inner);
        f(&t)
    }

    /// Point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.read_tables(|t| MetricsSnapshot {
            counters: t.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: t.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: t.hists.values().map(Histogram::snapshot).collect(),
        })
    }
}

/// The process-wide registry, for components that opt into sharing one
/// (stacks built by `DeviceBuilder` default to per-device instances so
/// tests stay isolated).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// An immutable, mergeable copy of a registry's metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Every histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render as Prometheus text exposition (see [`crate::prom`]).
    pub fn to_prometheus(&self) -> String {
        crate::prom::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        let g = r.gauge("a.g");
        g.set(7);
        g.set_max(3);
        g.set_max(11);
        assert_eq!(r.gauge("a.g").get(), 11);
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("x");
        let h = r.histogram("h", Unit::Count);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let r = MetricsRegistry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.histogram("m.h", Unit::SimNanos).record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counter("z.last"), Some(1));
        assert_eq!(s.histogram("m.h").map(|h| h.count), Some(1));
        assert!(s.histogram("missing").is_none());
    }
}
