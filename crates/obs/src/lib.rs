//! # noftl-obs — observability substrate for the NoFTL workspace
//!
//! The paper's argument is quantitative — per-region I/O behaviour, GC
//! interference, die utilisation — so the workspace needs one substrate
//! every layer can record into.  This crate provides it:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed latency [`Histogram`]s (p50/p90/p99/p999 + max,
//!   mergeable, in simulated- or wall-clock units);
//! * [`Tracer`] — a bounded ring of typed span/instant [`TraceEvent`]s,
//!   exportable as Chrome `trace_event` JSON
//!   ([`Tracer::to_chrome_json`]) and validated by
//!   [`validate_chrome_trace`];
//! * [`dump`] — Prometheus text exposition and human-readable tables.
//!
//! Design constraints, both load-bearing:
//!
//! * **Pure std, atomics-only hot path.**  Updating any handle is a
//!   relaxed atomic; nothing here acquires a `flash_sim::lockorder`
//!   tracked lock, so instrumentation can be inserted inside any shard
//!   without touching the documented lock order.  (The tracer's ring
//!   mutex and the registry's registration lock are plain-`std` leaf
//!   locks on cold paths only.)
//! * **Free when off.**  A disabled registry or tracer costs one relaxed
//!   load per call site and allocates nothing — asserted by the
//!   release-mode no-allocation test in `tests/no_alloc.rs`.
//!
//! Naming scheme (see the README's Observability section):
//! `layer.component.metric`, e.g. `flash.queue.read.wait_ns`,
//! `core.placement.probes_total`, `kv.put.latency_ns`.

#![warn(missing_docs)]

pub mod dump;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod tracer;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{global, Counter, Gauge, MetricsRegistry, MetricsSnapshot, Unit};
pub use tracer::{validate_chrome_trace, TraceEvent, Tracer};

/// Wall-clock stopwatch recording into a histogram on drop-free `stop`.
///
/// ```
/// let r = noftl_obs::MetricsRegistry::new();
/// let h = r.histogram("demo.wall_ns", noftl_obs::Unit::WallNanos);
/// let sw = noftl_obs::Stopwatch::start();
/// // ... work ...
/// sw.stop(&h);
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Record the elapsed wall-clock nanoseconds into `hist`.
    pub fn stop(self, hist: &Histogram) {
        let ns = u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        hist.record(ns);
    }
}
