//! Minimal JSON support: escaping for the emitters and a strict
//! recursive-descent parser for validating emitted documents.
//!
//! The workspace's vendored `serde` is an offline marker stub with no
//! deserializer, so trace/bench JSON produced by this repo is validated
//! with this hand-rolled parser instead.  It accepts exactly the JSON
//! grammar (RFC 8259) minus `\u` surrogate-pair pedantry: escapes are
//! decoded for the BMP and rejected when malformed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.  Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes.get(self.pos..self.pos + lit.len()) == Some(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self.bytes.get(self.pos..self.pos + 4).ok_or("short \\u")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u")?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

/// Expected byte length of a UTF-8 sequence from its lead byte.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "t": true}"#)
            .expect("valid document");
        assert_eq!(doc.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        assert_eq!(doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x\ny"));
        assert_eq!(doc.get("a").and_then(Json::as_array).and_then(|a| a[2].as_f64()), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = parse(&format!("\"{}\"", escape(nasty))).expect("escaped string parses");
        assert_eq!(doc.as_str(), Some(nasty));
    }

    #[test]
    fn unicode_passthrough() {
        let doc = parse("\"héllo — ✓\"").expect("utf-8 string");
        assert_eq!(doc.as_str(), Some("héllo — ✓"));
    }
}
