//! Prometheus text exposition (format version 0.0.4).
//!
//! Caveats, since this renders an in-process snapshot rather than a
//! scrape endpoint:
//!
//! * metric names are sanitized by mapping every character outside
//!   `[a-zA-Z0-9_:]` (notably the registry's dots) to `_`;
//! * histograms are rendered as Prometheus **summaries** (pre-computed
//!   `quantile` series plus `_sum`/`_count`) because the log-bucket
//!   edges are not cumulative `le` thresholds;
//! * simulated-time series carry real values in nanoseconds of
//!   *simulated* clock — graph them for shape, not for wall-clock SLOs;
//! * no `# HELP` text and no timestamps are emitted.

use crate::metrics::MetricsSnapshot;

/// Quantiles exported for each histogram.
const QUANTILES: &[(f64, &str)] = &[(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Map a registry name to a legal Prometheus metric name.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, label) in QUANTILES {
            out.push_str(&format!("{name}{{quantile=\"{label}\"}} {}\n", h.percentile(*q)));
        }
        out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, Unit};

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("flash.die0.programs"), "flash_die0_programs");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn render_covers_all_metric_kinds() {
        let r = MetricsRegistry::new();
        r.counter("a.count").add(3);
        r.gauge("a.hwm").set(7);
        let h = r.histogram("a.lat_ns", Unit::SimNanos);
        h.record(100);
        h.record(200);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE a_count counter\na_count 3\n"));
        assert!(text.contains("# TYPE a_hwm gauge\na_hwm 7\n"));
        assert!(text.contains("# TYPE a_lat_ns summary\n"));
        assert!(text.contains("a_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("a_lat_ns_sum 300\na_lat_ns_count 2\n"));
    }
}
