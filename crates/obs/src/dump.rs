//! One-stop dump helpers: turn a registry into something a human (or a
//! scraper, or Chrome) can read.  Re-exported at the workspace facade as
//! `noftl_regions::obs::dump`.

use crate::metrics::MetricsRegistry;

/// Prometheus text exposition of the registry's current state.
pub fn prometheus(registry: &MetricsRegistry) -> String {
    registry.snapshot().to_prometheus()
}

/// Chrome `trace_event` JSON of the registry's tracer ring.  Load the
/// output at `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(registry: &MetricsRegistry) -> String {
    registry.tracer().to_chrome_json()
}

/// A plain-text table of every metric: counters and gauges one per
/// line, histograms with count / mean / p50 / p99 / p999 / max.
pub fn table(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!("{name:<44} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("{name:<44} {value} (gauge)\n"));
    }
    for h in &snap.histograms {
        out.push_str(&format!(
            "{:<44} n={} mean={:.0} p50={} p99={} p999={} max={} [{}]\n",
            h.name,
            h.count,
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99),
            h.percentile(0.999),
            h.max,
            h.unit.as_str(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Unit;

    #[test]
    fn table_lists_every_metric_kind() {
        let r = MetricsRegistry::new();
        r.counter("x.ops").add(2);
        r.gauge("x.hwm").set(9);
        r.histogram("x.lat_ns", Unit::SimNanos).record(1_000);
        let text = table(&r);
        assert!(text.contains("x.ops"));
        assert!(text.contains("(gauge)"));
        assert!(text.contains("p999="));
        assert!(text.contains("[sim_ns]"));
    }
}
