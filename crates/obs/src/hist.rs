//! Log-bucketed latency histograms.
//!
//! An HdrHistogram-style layout: values below `LINEAR_MAX` (16) are
//! recorded exactly, one bucket per value; above that, each power-of-two
//! octave is split into `SUB` (8) sub-buckets, bounding the relative quantization
//! error at `1/SUB` (12.5%).  All state is `AtomicU64`, so recording is
//! lock-free and a histogram can be shared freely across threads without
//! touching the workspace's tracked lock order.
//!
//! The full `u64` range is representable: 16 exact buckets plus 8
//! sub-buckets for each of the 60 octaves `2^4..2^63` — 496 buckets,
//! ~4 KiB per histogram.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use crate::metrics::{Flag, Unit};

/// Values below this are recorded exactly (one bucket per value).
const LINEAR_MAX: u64 = 16;
/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power-of-two octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count (exact range + 60 octaves of 8).
pub const BUCKETS: usize = LINEAR_MAX as usize + (63 - SUB_BITS as usize) * SUB;

/// Bucket index for a recorded value.  Total and monotone over `u64`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    LINEAR_MAX as usize + (msb - SUB_BITS - 1) as usize * SUB + sub
}

/// Smallest value mapping to bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let oct = (i - LINEAR_MAX as usize) / SUB;
    let sub = ((i - LINEAR_MAX as usize) % SUB) as u64;
    let msb = oct as u32 + SUB_BITS + 1;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

/// Largest value mapping to bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lo(i + 1) - 1
    } else {
        u64::MAX
    }
}

#[derive(Debug)]
pub(crate) struct HistInner {
    pub(crate) name: String,
    pub(crate) unit: Unit,
    enabled: Arc<Flag>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

/// A shareable, lock-free, mergeable latency histogram handle.
///
/// Cloning is cheap (an `Arc` bump) and all clones record into the same
/// buckets.  When the owning registry is disabled, [`Histogram::record`]
/// is a single relaxed load and an untaken branch.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    pub(crate) fn new(name: &str, unit: Unit, enabled: Arc<Flag>) -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                name: name.to_string(),
                unit,
                enabled,
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Unit of recorded values.
    pub fn unit(&self) -> Unit {
        self.inner.unit
    }

    /// Record one observation.  Lock-free; a no-op (one relaxed load)
    /// when the registry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let i = bucket_index(v);
        if let Some(b) = self.inner.buckets.get(i) {
            b.fetch_add(1, Relaxed);
        }
        self.inner.count.fetch_add(1, Relaxed);
        self.inner.sum.fetch_add(v, Relaxed);
        self.inner.max.fetch_max(v, Relaxed);
        self.inner.min.fetch_min(v, Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Relaxed)
    }

    /// Point-in-time copy of the buckets, for percentiles and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.inner.name.clone(),
            unit: self.inner.unit,
            count: self.inner.count.load(Relaxed),
            sum: self.inner.sum.load(Relaxed),
            max: self.inner.max.load(Relaxed),
            min: self.inner.min.load(Relaxed),
            buckets: self.inner.buckets.iter().map(|b| b.load(Relaxed)).collect(),
        }
    }
}

/// An immutable copy of a histogram's state: percentile queries and
/// merging happen here, off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Unit of recorded values.
    pub unit: Unit,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow, like the counters).
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty(name: &str, unit: Unit) -> Self {
        HistogramSnapshot {
            name: name.to_string(),
            unit,
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
            buckets: vec![0; BUCKETS],
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped
    /// to the exactly-tracked maximum.  Within `1/8` relative error of
    /// the true quantile; monotone in `q`; returns 0 on an empty
    /// histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one.  Associative and commutative
    /// on counts/sum/max/min/buckets; the name and unit of `self` win.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
    }

    /// Iterate non-empty buckets as `(lo, hi, count)` ranges.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lo(i), bucket_hi(i), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram::new("t", Unit::SimNanos, Arc::new(Flag::new(true)))
    }

    #[test]
    fn bucket_index_is_total_and_bounds_hold() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "{v} outside bucket {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = hist();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..LINEAR_MAX {
            let q = (v + 1) as f64 / LINEAR_MAX as f64;
            assert_eq!(s.percentile(q), v);
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let h = hist();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.percentile(0.50);
        let p99 = s.percentile(0.99);
        assert!((450..=570).contains(&p50), "p50 {p50}");
        assert!((900..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(s.percentile(1.0), 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.min, 1);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let flag = Arc::new(Flag::new(false));
        let h = Histogram::new("t", Unit::SimNanos, flag.clone());
        h.record(42);
        assert_eq!(h.count(), 0);
        flag.set(true);
        h.record(42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_identity_and_sum() {
        let h = hist();
        for v in [3u64, 300, 30_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut m = HistogramSnapshot::empty("t", Unit::SimNanos);
        m.merge(&s);
        m.merge(&s);
        assert_eq!(m.count, 6);
        assert_eq!(m.sum, 2 * s.sum);
        assert_eq!(m.max, 30_000);
        assert_eq!(m.min, 3);
    }
}
