//! Bounded ring-buffer event tracer with Chrome `trace_event` export.
//!
//! Layers record typed [`TraceEvent`]s — spans (a named interval on a
//! track) and instants — into a fixed-capacity ring: when full, the
//! oldest events are overwritten, so a long run keeps its tail.
//! Timestamps are simulated-clock nanoseconds, which keeps traces
//! deterministic and replayable.
//!
//! The tracer is **disabled by default** and the enabled check is a
//! relaxed atomic load taken before any argument is materialized, so a
//! disabled tracer allocates nothing (pinned by the no-alloc test).  The
//! ring itself sits behind a plain `std::sync::Mutex` — a leaf lock that
//! never nests inside another acquisition and is invisible to the
//! `flash_sim::lockorder` sanitizer by design.
//!
//! Export: [`Tracer::to_chrome_json`] emits the Chrome trace-event JSON
//! array format — load it at `chrome://tracing` or <https://ui.perfetto.dev>.
//! Spans become `"ph":"X"` complete events, instants `"ph":"i"`; the
//! `tid` is the recording track (die id, region id, or 0 for global
//! layers) and `ts`/`dur` are microseconds with nanosecond fractions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, PoisonError};

use crate::json;

/// Default ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (static so recording never allocates for it).
    pub name: &'static str,
    /// Category (one per layer: `"flash"`, `"core"`, `"dbms"`, `"kv"`).
    pub cat: &'static str,
    /// Track the event renders on (Chrome `tid`): die id, region id, …
    pub track: u64,
    /// Start timestamp, simulated-clock nanoseconds.
    pub ts_ns: u64,
    /// `Some(duration)` for spans, `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Small typed payload (`("pages", 12)`).
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct Ring {
    events: Vec<TraceEvent>,
    /// Next overwrite position once `events` has reached capacity.
    head: usize,
}

/// The bounded event tracer.  See the module docs.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer holding at most `capacity` events (clamped to
    /// at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, v: bool) {
        self.enabled.store(v, Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Record a span covering `[start_ns, end_ns]` (clamped to be
    /// non-negative).  A no-op when disabled.
    #[inline]
    pub fn span(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u64,
        start_ns: u64,
        end_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            name,
            cat,
            track,
            ts_ns: start_ns,
            dur_ns: Some(end_ns.saturating_sub(start_ns)),
            args: args.to_vec(),
        });
    }

    /// Record an instant event.  A no-op when disabled.
    #[inline]
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u64,
        ts_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent { name, cat, track, ts_ns, dur_ns: None, args: args.to_vec() });
    }

    fn push(&self, e: TraceEvent) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.events.len() < self.capacity {
            ring.events.push(e);
        } else {
            let head = ring.head;
            if let Some(slot) = ring.events.get_mut(head) {
                *slot = e;
            }
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    /// Copy out the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(ring.events.get(ring.head..).unwrap_or(&[]));
        out.extend_from_slice(ring.events.get(..ring.head).unwrap_or(&[]));
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all recorded events (the enabled flag is unchanged).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.events.clear();
        ring.head = 0;
    }

    /// Render the ring as Chrome `trace_event` JSON:
    /// `{"traceEvents": [...]}` with `ts`/`dur` in microseconds.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\": [");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            let ph = if e.dur_ns.is_some() { "X" } else { "i" };
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{ph}\", \"ts\": {:.3}, ",
                json::escape(e.name),
                json::escape(e.cat),
                e.ts_ns as f64 / 1_000.0,
            ));
            if let Some(d) = e.dur_ns {
                out.push_str(&format!("\"dur\": {:.3}, ", d as f64 / 1_000.0));
            } else {
                out.push_str("\"s\": \"t\", ");
            }
            out.push_str(&format!("\"pid\": 1, \"tid\": {}", e.track));
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {v}", json::escape(k)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// Validate that `text` parses as Chrome `trace_event` JSON: a top-level
/// object with a `traceEvents` array whose entries carry the required
/// fields (`name`/`cat`/`ph` strings, numeric `ts`/`pid`/`tid`, and a
/// numeric `dur` on every `"X"` event).  Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .ok_or_else(|| "missing top-level traceEvents array".to_string())?;
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "cat", "ph"] {
            if e.get(key).and_then(json::Json::as_str).is_none() {
                return Err(format!("event {i}: missing string field `{key}`"));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if e.get(key).and_then(json::Json::as_f64).is_none() {
                return Err(format!("event {i}: missing numeric field `{key}`"));
            }
        }
        let ph = e.get("ph").and_then(json::Json::as_str).unwrap_or_default();
        if ph == "X" && e.get("dur").and_then(json::Json::as_f64).is_none() {
            return Err(format!("event {i}: complete event without a numeric `dur`"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.span("c", "n", 0, 0, 10, &[]);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.span("c", "n", 0, 0, 10, &[("pages", 2)]);
        t.instant("c", "tick", 1, 5, &[]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::with_capacity(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.instant("c", "e", 0, i, &[]);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn chrome_export_validates() {
        let t = Tracer::default();
        t.set_enabled(true);
        t.span("flash", "program", 3, 1_000, 26_000, &[("depth", 4)]);
        t.instant("core", "gc", 0, 30_000, &[]);
        let text = t.to_chrome_json();
        assert_eq!(validate_chrome_trace(&text), Ok(2));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"dur\": 25.000"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let t = Tracer::default();
        assert_eq!(validate_chrome_trace(&t.to_chrome_json()), Ok(0));
    }
}
