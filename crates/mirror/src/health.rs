//! Per-child health state machine.
//!
//! Each child of a mirror is in exactly one of three states:
//!
//! ```text
//!            device loss
//!   Online ──────────────▶ Faulted
//!      ▲                      │ start_rebuild (loss cleared)
//!      │ rebuild drains       ▼
//!      └────────────────── Rebuilding ──▶ Faulted (lost again)
//! ```
//!
//! The transitions are validated centrally by
//! [`ChildHealth::check_transition`] so an illegal hop (e.g. `Faulted →
//! Online` without a rebuild) is a [`FlashError::MirrorConfig`] instead of
//! silent state corruption.  `Rebuilding` is a volatile state: the
//! persisted segment-map blob stores it as [`ChildHealth::Faulted`], so a
//! crash mid-rebuild resumes from "stale child with a dirty map", never
//! from "child that pretends its interrupted copies landed".

use flash_sim::FlashError;

/// Health of one mirror child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildHealth {
    /// In sync: receives every write, may serve any read.
    Online,
    /// Lost or known stale: writes are recorded in its dirty segment map,
    /// reads never touch it.
    Faulted,
    /// A rebuild is draining its dirty segments: receives foreground
    /// writes to clean segments and may serve reads from them.
    Rebuilding,
}

impl ChildHealth {
    /// Whether a child in this state is a candidate for serving reads
    /// (for `Rebuilding` only from segments that are clean and not
    /// currently being copied — the caller checks the segment map).
    pub fn may_serve_reads(self) -> bool {
        !matches!(self, ChildHealth::Faulted)
    }

    /// Validate the transition `self → to`, returning it on success.
    pub fn check_transition(self, to: ChildHealth) -> Result<ChildHealth, FlashError> {
        let ok = matches!(
            (self, to),
            (ChildHealth::Online, ChildHealth::Faulted)
                | (ChildHealth::Faulted, ChildHealth::Rebuilding)
                | (ChildHealth::Rebuilding, ChildHealth::Online)
                | (ChildHealth::Rebuilding, ChildHealth::Faulted)
        );
        if ok {
            Ok(to)
        } else {
            Err(FlashError::MirrorConfig {
                message: format!("illegal health transition {self:?} -> {to:?}"),
            })
        }
    }

    /// Persisted encoding.  `Rebuilding` deliberately collapses to the
    /// `Faulted` byte: an interrupted rebuild must restart from its dirty
    /// map, not resume an in-memory state that died with the process.
    pub fn encode(self) -> u8 {
        match self {
            ChildHealth::Online => 0,
            ChildHealth::Faulted | ChildHealth::Rebuilding => 1,
        }
    }

    /// Decode a persisted health byte.
    pub fn decode(b: u8) -> Option<ChildHealth> {
        match b {
            0 => Some(ChildHealth::Online),
            1 => Some(ChildHealth::Faulted),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_transitions() {
        use ChildHealth::*;
        assert_eq!(Online.check_transition(Faulted).unwrap(), Faulted);
        assert_eq!(Faulted.check_transition(Rebuilding).unwrap(), Rebuilding);
        assert_eq!(Rebuilding.check_transition(Online).unwrap(), Online);
        assert_eq!(Rebuilding.check_transition(Faulted).unwrap(), Faulted);
    }

    #[test]
    fn illegal_transitions_are_config_errors() {
        use ChildHealth::*;
        for (from, to) in [
            (Faulted, Online),
            (Online, Rebuilding),
            (Online, Online),
            (Faulted, Faulted),
            (Rebuilding, Rebuilding),
        ] {
            let err = from.check_transition(to).unwrap_err();
            assert!(matches!(err, FlashError::MirrorConfig { .. }), "{from:?}->{to:?}");
        }
    }

    #[test]
    fn rebuilding_persists_as_faulted() {
        assert_eq!(ChildHealth::Rebuilding.encode(), ChildHealth::Faulted.encode());
        assert_eq!(ChildHealth::decode(0), Some(ChildHealth::Online));
        assert_eq!(ChildHealth::decode(1), Some(ChildHealth::Faulted));
        assert_eq!(ChildHealth::decode(2), None);
    }

    #[test]
    fn read_candidacy() {
        assert!(ChildHealth::Online.may_serve_reads());
        assert!(ChildHealth::Rebuilding.may_serve_reads());
        assert!(!ChildHealth::Faulted.may_serve_reads());
    }
}
