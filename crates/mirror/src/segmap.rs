//! Dirty-segment tracking and its persisted form.
//!
//! A *segment* is one erase block, addressed by its linear block index
//! `(die * planes_per_die + plane) * blocks_per_plane + block`.  While a
//! child is faulted, every write that would have reached it marks the
//! targeted segment dirty in that child's [`SegmentMap`]; the rebuild
//! engine later copies exactly the dirty segments and nothing else.
//!
//! [`MirrorBlob`] is the persisted form carried inside the NoFTL
//! checkpoint (`CheckpointImage::replication`): per-child health byte and
//! bitmap plus the mirror's epoch watermark, framed by a magic and a
//! CRC-32 trailer.  A torn or truncated blob decodes to `None`, which the
//! restore path treats as "every non-source child may be entirely stale"
//! — the mandated fail-safe direction.

use crate::health::ChildHealth;
use flash_sim::crc32;

/// Magic prefix of the persisted mirror blob.
pub const BLOB_MAGIC: &[u8; 8] = b"NFMIRR01";

/// A fixed-size bitmap over the segments of one child.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    segments: u64,
    words: Vec<u64>,
    dirty: u64,
}

impl SegmentMap {
    /// A map over `segments` segments, all clean.
    pub fn all_clean(segments: u64) -> Self {
        let words = segments.div_ceil(64) as usize;
        SegmentMap { segments, words: vec![0; words], dirty: 0 }
    }

    /// A map over `segments` segments, all dirty (the fail-safe state).
    pub fn all_dirty(segments: u64) -> Self {
        let mut map = Self::all_clean(segments);
        for seg in 0..segments {
            map.mark(seg);
        }
        map
    }

    /// Number of segments the map covers.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Number of dirty segments.
    pub fn dirty_count(&self) -> u64 {
        self.dirty
    }

    /// True when no segment is dirty.
    pub fn is_all_clean(&self) -> bool {
        self.dirty == 0
    }

    /// Is `seg` dirty?  Out-of-range segments report clean.
    pub fn is_dirty(&self, seg: u64) -> bool {
        if seg >= self.segments {
            return false;
        }
        self.words[(seg / 64) as usize] & (1u64 << (seg % 64)) != 0
    }

    /// Mark `seg` dirty; returns `true` if it was clean before.
    /// Out-of-range segments are ignored.
    pub fn mark(&mut self, seg: u64) -> bool {
        if seg >= self.segments || self.is_dirty(seg) {
            return false;
        }
        self.words[(seg / 64) as usize] |= 1u64 << (seg % 64);
        self.dirty += 1;
        true
    }

    /// Clear `seg`; returns `true` if it was dirty before.
    pub fn clear(&mut self, seg: u64) -> bool {
        if !self.is_dirty(seg) {
            return false;
        }
        self.words[(seg / 64) as usize] &= !(1u64 << (seg % 64));
        self.dirty -= 1;
        true
    }

    /// Lowest dirty segment, if any (the rebuild engine's work picker).
    pub fn first_dirty(&self) -> Option<u64> {
        for (w, word) in self.words.iter().enumerate() {
            if *word != 0 {
                let seg = w as u64 * 64 + word.trailing_zeros() as u64;
                return (seg < self.segments).then_some(seg);
            }
        }
        None
    }

    /// Iterate over the dirty segments in ascending order.
    pub fn iter_dirty(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.segments).filter(|&s| self.is_dirty(s))
    }

    /// Mark every segment that is dirty in `other`.
    pub fn union(&mut self, other: &SegmentMap) {
        for seg in other.iter_dirty() {
            self.mark(seg);
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.segments.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn decode_from(c: &mut Cursor<'_>) -> Option<SegmentMap> {
        let segments = c.u64()?;
        let word_count = c.u32()? as usize;
        if word_count != segments.div_ceil(64) as usize {
            return None;
        }
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(c.u64()?);
        }
        // Bits beyond `segments` must be zero or the blob is corrupt.
        if segments % 64 != 0 {
            if let Some(last) = words.last() {
                if last >> (segments % 64) != 0 {
                    return None;
                }
            }
        }
        let dirty = words.iter().map(|w| w.count_ones() as u64).sum();
        Some(SegmentMap { segments, words, dirty })
    }
}

/// Persisted health + dirty map of one child.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildBlob {
    /// Health at blob time (`Rebuilding` collapses to `Faulted`).
    pub health: ChildHealth,
    /// Dirty segments at blob time, including any copy that was still in
    /// flight (a crash mid-copy must re-copy, never trust it landed).
    pub dirty: SegmentMap,
}

/// The persisted replication state of a whole mirror.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorBlob {
    /// Mirror write epoch when the blob was taken (diagnostic watermark;
    /// source selection at restore re-derives from the devices).
    pub watermark: u64,
    /// Per-child state, indexed like the mirror's children.
    pub children: Vec<ChildBlob>,
}

impl MirrorBlob {
    /// Serialise: magic | watermark | child count | children | crc32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BLOB_MAGIC);
        out.extend_from_slice(&self.watermark.to_le_bytes());
        out.extend_from_slice(&(self.children.len() as u32).to_le_bytes());
        for child in &self.children {
            out.push(child.health.encode());
            child.dirty.encode_into(&mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a blob produced by [`MirrorBlob::encode`].  Any framing,
    /// length or checksum mismatch yields `None` — the caller must then
    /// assume every non-source child is entirely stale.
    pub fn decode(buf: &[u8]) -> Option<MirrorBlob> {
        if buf.len() < BLOB_MAGIC.len() + 4 || &buf[..BLOB_MAGIC.len()] != BLOB_MAGIC {
            return None;
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut c = Cursor { buf: &body[BLOB_MAGIC.len()..] };
        let watermark = c.u64()?;
        let count = c.u32()? as usize;
        let mut children = Vec::with_capacity(count);
        for _ in 0..count {
            let health = ChildHealth::decode(c.u8()?)?;
            let dirty = SegmentMap::decode_from(&mut c)?;
            children.push(ChildBlob { health, dirty });
        }
        if !c.buf.is_empty() {
            return None;
        }
        Some(MirrorBlob { watermark, children })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|b| b.try_into().ok()).map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mark_clear_count() {
        let mut m = SegmentMap::all_clean(100);
        assert!(m.is_all_clean());
        assert!(m.mark(0));
        assert!(m.mark(63));
        assert!(m.mark(64));
        assert!(m.mark(99));
        assert!(!m.mark(99), "re-marking reports already dirty");
        assert!(!m.mark(100), "out of range ignored");
        assert_eq!(m.dirty_count(), 4);
        assert!(m.is_dirty(64));
        assert!(!m.is_dirty(65));
        assert!(m.clear(63));
        assert!(!m.clear(63));
        assert_eq!(m.dirty_count(), 3);
        assert_eq!(m.first_dirty(), Some(0));
        assert_eq!(m.iter_dirty().collect::<Vec<_>>(), vec![0, 64, 99]);
    }

    #[test]
    fn all_dirty_and_union() {
        let m = SegmentMap::all_dirty(70);
        assert_eq!(m.dirty_count(), 70);
        assert_eq!(m.first_dirty(), Some(0));
        let mut a = SegmentMap::all_clean(70);
        a.mark(3);
        let mut b = SegmentMap::all_clean(70);
        b.mark(3);
        b.mark(69);
        a.union(&b);
        assert_eq!(a.iter_dirty().collect::<Vec<_>>(), vec![3, 69]);
    }

    #[test]
    fn blob_roundtrip() {
        let mut dirty0 = SegmentMap::all_clean(64);
        dirty0.mark(7);
        dirty0.mark(63);
        let blob = MirrorBlob {
            watermark: 12345,
            children: vec![
                ChildBlob { health: ChildHealth::Online, dirty: SegmentMap::all_clean(64) },
                ChildBlob { health: ChildHealth::Faulted, dirty: dirty0 },
            ],
        };
        let enc = blob.encode();
        assert_eq!(MirrorBlob::decode(&enc), Some(blob));
    }

    #[test]
    fn rebuilding_child_persists_as_faulted() {
        let blob = MirrorBlob {
            watermark: 1,
            children: vec![ChildBlob {
                health: ChildHealth::Rebuilding,
                dirty: SegmentMap::all_clean(8),
            }],
        };
        let dec = MirrorBlob::decode(&blob.encode()).unwrap();
        assert_eq!(dec.children[0].health, ChildHealth::Faulted);
    }

    #[test]
    fn torn_blobs_decode_to_none() {
        let blob = MirrorBlob {
            watermark: 99,
            children: vec![ChildBlob {
                health: ChildHealth::Online,
                dirty: SegmentMap::all_dirty(130),
            }],
        };
        let enc = blob.encode();
        // Truncations at every length.
        for n in 0..enc.len() {
            assert_eq!(MirrorBlob::decode(&enc[..n]), None, "truncated to {n}");
        }
        // Any single-byte corruption breaks the CRC (or the framing).
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x40;
            assert_eq!(MirrorBlob::decode(&bad), None, "flipped byte {i}");
        }
        assert_eq!(MirrorBlob::decode(b"junk"), None);
        assert_eq!(MirrorBlob::decode(&[]), None);
    }

    proptest! {
        #[test]
        fn roundtrip_any(watermark in any::<u64>(), segs in 1u64..300, seed in any::<u64>()) {
            let mut dirty = SegmentMap::all_clean(segs);
            // Deterministic pseudo-random dirtying from the seed.
            let mut x = seed | 1;
            for _ in 0..(segs / 2) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                dirty.mark(x % segs);
            }
            let blob = MirrorBlob {
                watermark,
                children: vec![
                    ChildBlob { health: ChildHealth::Faulted, dirty },
                    ChildBlob { health: ChildHealth::Online, dirty: SegmentMap::all_clean(segs) },
                ],
            };
            prop_assert_eq!(MirrorBlob::decode(&blob.encode()), Some(blob));
        }

        #[test]
        fn dirty_count_tracks_bits(segs in 1u64..200, seed in any::<u64>()) {
            let mut m = SegmentMap::all_clean(segs);
            let mut x = seed | 1;
            for _ in 0..segs {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = x % segs;
                if x & 1 == 0 { m.mark(s); } else { m.clear(s); }
                prop_assert_eq!(m.dirty_count(), m.iter_dirty().count() as u64);
            }
        }
    }
}
