//! Online rebuild: drain a faulted child's dirty segment map while
//! foreground traffic continues.
//!
//! A rebuild copies one segment (erase block) at a time.  The segment is
//! entered into the `MirrorRange`-guarded lock set first,
//! which makes foreground mutations of it *skip and redirty* instead of
//! racing the copy; the copy itself then runs without the mirror lock
//! held so every other segment keeps serving reads and writes at full
//! speed.  When the copy lands the segment's dirty bit is cleared —
//! unless a foreground write redirtied it mid-copy, in which case it
//! stays queued and the copy counts as requeued work.
//!
//! The per-segment copy streams the source block through a bounded
//! window of queued reads (`window` in flight), programming each page on
//! the target at its read-completion instant with the source's OOB
//! metadata preserved, so after the copy the two blocks compare
//! identical shape-and-OOB in [the verify scan].  Source pages that are
//! `Invalid` are re-invalidated on the target, and a source block gone
//! `Bad` retires the target block instead of copying.
//!
//! [the verify scan]: crate::MirrorDevice::restore_replication

use flash_sim::queue::{CmdHandle, FlashCommand};
use flash_sim::{BlockState, FlashError, PageMetadata, PageState, Result, SimTime};

use crate::device::MirrorDevice;
use crate::health::ChildHealth;

/// What one [`MirrorDevice::rebuild_step`] call did to its segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentCopy {
    /// Segment that was copied.
    pub segment: u64,
    /// Pages programmed on the target.
    pub pages_copied: u32,
    /// Pages re-marked `Invalid` on the target after the copy.
    pub pages_invalidated: u32,
    /// The source block was `Bad`, so the target block was retired
    /// instead of copied.
    pub retired: bool,
    /// A foreground write raced the copy; the segment stays dirty and
    /// will be copied again.
    pub requeued: bool,
    /// Simulated instant the copy (and its bookkeeping) finished.
    pub completed_at: SimTime,
}

/// Summary of a full [`MirrorDevice::rebuild`] run.
#[derive(Debug, Clone, Copy)]
pub struct RebuildReport {
    /// Child that was rebuilt.
    pub child: usize,
    /// Segments whose copy landed and cleared their dirty bit.
    pub segments_copied: u64,
    /// Copies that raced a foreground write and were queued again.
    pub segments_requeued: u64,
    /// Total pages programmed on the target.
    pub pages_copied: u64,
    /// Pages re-invalidated on the target.
    pub pages_invalidated: u64,
    /// Target blocks retired because the source block was bad.
    pub blocks_retired: u64,
    /// Simulated instant the rebuild started.
    pub started_at: SimTime,
    /// Simulated instant the child came back online (or the run stopped).
    pub completed_at: SimTime,
    /// Whether the child finished the run `Online`.
    pub child_online: bool,
}

impl MirrorDevice {
    /// Transition a faulted child to `Rebuilding` so
    /// [`MirrorDevice::rebuild_step`] can start draining its dirty map.
    ///
    /// Fails if the child is not `Faulted`, is still lost at `at`,
    /// another child is already rebuilding, or no online source exists.
    pub fn start_rebuild(&self, child: usize, at: SimTime) -> Result<()> {
        let mut state = self.mirror_shard();
        self.sweep_losses(&mut state, at);
        if child >= state.children.len() {
            return Err(FlashError::MirrorConfig {
                message: format!("no child {child} in a {}-way mirror", state.children.len()),
            });
        }
        if self.injector().is_lost(child, at) {
            return Err(FlashError::MirrorConfig {
                message: format!("child {child} is still lost; clear the injector first"),
            });
        }
        if state.children.iter().any(|c| c.health == ChildHealth::Rebuilding) {
            return Err(FlashError::MirrorConfig {
                message: "another rebuild is already in progress".into(),
            });
        }
        if !state
            .children
            .iter()
            .enumerate()
            .any(|(i, c)| i != child && c.health == ChildHealth::Online)
        {
            return Err(FlashError::NoHealthyChild { at });
        }
        let c = &mut state.children[child];
        c.health = c.health.check_transition(ChildHealth::Rebuilding)?;
        if c.assume_all_dirty {
            // No trustworthy map: materialise "everything" so progress
            // is trackable and the blob stays exact from here on.
            c.dirty = crate::SegmentMap::all_dirty(self.segment_count());
            c.assume_all_dirty = false;
        }
        self.obs.set_segments_remaining(c.dirty.dirty_count());
        Ok(())
    }

    /// Copy the lowest-numbered dirty segment of `child`.
    ///
    /// Returns `Ok(None)` once the map is drained — at which point the
    /// child has transitioned back to `Online`.  `window` bounds the
    /// number of source reads in flight during the copy.
    pub fn rebuild_step(
        &self,
        child: usize,
        window: usize,
        at: SimTime,
    ) -> Result<Option<SegmentCopy>> {
        let (seg, source) = {
            let mut state = self.mirror_shard();
            self.sweep_losses(&mut state, at);
            match state.children[child].health {
                ChildHealth::Rebuilding => {}
                ChildHealth::Faulted => {
                    // Lost again mid-rebuild.
                    return Err(FlashError::DeviceLost {
                        child,
                        at: state.children[child].faulted_at.unwrap_or(at),
                    });
                }
                ChildHealth::Online => {
                    return Err(FlashError::MirrorConfig {
                        message: format!("child {child} is not rebuilding"),
                    });
                }
            }
            let Some(source) = state
                .children
                .iter()
                .enumerate()
                .position(|(i, c)| i != child && c.health == ChildHealth::Online)
            else {
                return Err(FlashError::NoHealthyChild { at });
            };
            match state.children[child].dirty.first_dirty() {
                None => {
                    // Drained: the child is in sync again.  Commit the
                    // rebuilt history by ratcheting the child's epoch
                    // counter up to the mirror's (replica programs left
                    // it at its stale pre-loss value on purpose).
                    let c = &mut state.children[child];
                    c.health = c.health.check_transition(ChildHealth::Online)?;
                    self.children()[child]
                        .ratchet_epoch(flash_sim::FlashBackend::current_epoch(self));
                    let faulted_at = c.faulted_at.take().unwrap_or(SimTime::ZERO);
                    self.obs.note_back_online(child, faulted_at, at);
                    self.obs.set_segments_remaining(0);
                    return Ok(None);
                }
                Some(seg) => {
                    let mut ranges = self.range_shard();
                    ranges.locked.insert(seg);
                    ranges.redirtied.remove(&seg);
                    (seg, source)
                }
            }
        };
        // Copy with the mirror lock released: foreground traffic to every
        // other segment proceeds; traffic to this one skips + redirties.
        let result = self.copy_segment(source, child, seg, window, at);
        let mut state = self.mirror_shard();
        let mut ranges = self.range_shard();
        ranges.locked.remove(&seg);
        match result {
            Err(e) => {
                // The segment stays dirty; a redirty is subsumed by that.
                ranges.redirtied.remove(&seg);
                Err(e)
            }
            Ok(mut copy) => {
                let requeued = ranges.redirtied.remove(&seg);
                if !requeued {
                    state.children[child].dirty.clear(seg);
                }
                copy.requeued = requeued;
                let copy_ns = copy.completed_at.as_nanos().saturating_sub(at.as_nanos());
                self.obs.note_segment_copied(copy_ns, requeued);
                self.obs.set_segments_remaining(state.children[child].dirty.dirty_count());
                Ok(Some(copy))
            }
        }
    }

    /// Drain `child`'s dirty map to completion, advancing the simulated
    /// clock copy by copy.
    pub fn rebuild(&self, child: usize, window: usize, at: SimTime) -> Result<RebuildReport> {
        let mut report = RebuildReport {
            child,
            segments_copied: 0,
            segments_requeued: 0,
            pages_copied: 0,
            pages_invalidated: 0,
            blocks_retired: 0,
            started_at: at,
            completed_at: at,
            child_online: false,
        };
        let mut clock = at;
        loop {
            match self.rebuild_step(child, window, clock)? {
                None => {
                    report.completed_at = clock;
                    report.child_online = true;
                    return Ok(report);
                }
                Some(copy) => {
                    if copy.requeued {
                        report.segments_requeued += 1;
                    } else {
                        report.segments_copied += 1;
                    }
                    report.pages_copied += copy.pages_copied as u64;
                    report.pages_invalidated += copy.pages_invalidated as u64;
                    if copy.retired {
                        report.blocks_retired += 1;
                    }
                    clock = clock.max(copy.completed_at);
                }
            }
        }
    }

    /// Stream one segment from `source` to `child` through a bounded
    /// read window.  Runs without mirror-level locks; the caller holds
    /// the segment's range lock.
    fn copy_segment(
        &self,
        source: usize,
        child: usize,
        seg: u64,
        window: usize,
        at: SimTime,
    ) -> Result<SegmentCopy> {
        let block = self.block_of(seg);
        let src_dev = self.children()[source].as_ref();
        let tgt_dev = self.children()[child].as_ref();
        let mut copy = SegmentCopy {
            segment: seg,
            pages_copied: 0,
            pages_invalidated: 0,
            retired: false,
            requeued: false,
            completed_at: at,
        };
        let sb = src_dev.block_info(block)?;
        let tb = tgt_dev.block_info(block)?;
        if sb.state == BlockState::Bad {
            // The source has no content for this segment; mirror the
            // retirement so allocation skips the block everywhere.
            if tb.state != BlockState::Bad {
                tgt_dev.retire_block(block)?;
            }
            copy.retired = true;
            return Ok(copy);
        }
        if tb.state == BlockState::Bad {
            // The target block wore out: the source alone carries this
            // segment.  Nothing can be copied; the block is unusable on
            // the target, which future foreground programs surface as
            // mirror-wide retirement.
            copy.retired = true;
            return Ok(copy);
        }
        let mut clock = at;
        if tb.state != BlockState::Free {
            let out = self.submit_queued(child, FlashCommand::Erase { block }, clock)?;
            clock = out.completed_at;
        }
        if sb.write_ptr == 0 {
            copy.completed_at = clock;
            return Ok(copy);
        }
        // Snapshot per-page validity up front; a foreground invalidation
        // racing the copy redirties the segment, so divergence here is
        // re-copied later anyway.
        let mut invalid_pages = Vec::new();
        for page in 0..sb.write_ptr {
            if src_dev.page_state(block.page(page))? == PageState::Invalid {
                invalid_pages.push(page);
            }
        }
        let window = window.max(1);
        let mut pending: std::collections::VecDeque<(u32, CmdHandle)> =
            std::collections::VecDeque::with_capacity(window);
        let mut next = 0u32;
        // `slot_free` paces the window: the first `window` reads issue at
        // the step time, each further read when a slot frees up.
        let mut slot_free = clock;
        let outcome = loop {
            while pending.len() < window && next < sb.write_ptr {
                if self.injector().is_lost(source, slot_free) {
                    break;
                }
                let h = self
                    .queue(source)
                    .submit(FlashCommand::Read { addr: block.page(next) }, slot_free);
                pending.push_back((next, h));
                next += 1;
            }
            let Some((page, h)) = pending.pop_front() else {
                if next < sb.write_ptr {
                    // Loop exited early: the source disappeared.
                    break Err(FlashError::DeviceLost { child: source, at: slot_free });
                }
                break Ok(());
            };
            let out = match self.queue(source).wait(h).and_then(|c| c.result) {
                Ok(out) => out,
                Err(e) => break Err(e),
            };
            let read_done = out.outcome.completed_at;
            if self.injector().is_lost(child, read_done) {
                break Err(FlashError::DeviceLost { child, at: read_done });
            }
            // A torn source OOB area (power cut mid-program before the
            // blob was cut) still gets its payload copied; the metadata
            // placeholder keeps the page readable and the verify scan
            // conservative about it.
            let meta = out.meta.unwrap_or_else(|| PageMetadata::with_epoch(0, 0, 1));
            // Replica programs preserve the source epoch in OOB without
            // ratcheting the target's epoch counter: until this rebuild
            // commits, the copies are not consistent history, and a crash
            // now must leave a device whose counter still reads stale.
            match tgt_dev.program_replica(block.page(page), &out.data, meta, read_done) {
                Ok(out) => {
                    clock = clock.max(out.completed_at);
                    copy.pages_copied += 1;
                }
                Err(e) => break Err(e),
            }
            slot_free = slot_free.max(read_done);
        };
        if let Err(e) = outcome {
            // Claim every outstanding read completion before bailing so
            // the source queue does not accumulate orphaned handles.
            for (_, h) in pending.drain(..) {
                let _ = self.queue(source).wait(h);
            }
            return Err(e);
        }
        for page in invalid_pages {
            tgt_dev.mark_invalid(block.page(page))?;
            copy.pages_invalidated += 1;
        }
        copy.completed_at = clock;
        Ok(copy)
    }

    fn submit_queued(
        &self,
        child: usize,
        cmd: FlashCommand,
        at: SimTime,
    ) -> Result<flash_sim::OpOutcome> {
        let h = self.queue(child).submit(cmd, at);
        self.queue(child).wait(h)?.result.map(|out| out.outcome)
    }
}
