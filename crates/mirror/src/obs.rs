//! Registry handles pre-bound by the mirror (cold-path registration,
//! atomics-only updates — same discipline as `flash_sim`'s obs module).
//!
//! Metric names:
//!
//! * `mirror.child<i>.{reads,programs,write_skips}` — per-child I/O
//!   counters (a write skip is a program recorded in the child's dirty
//!   map instead of submitted);
//! * `mirror.child_faults` — health transitions into `Faulted`;
//! * `mirror.read.latency_ns` / `mirror.read.degraded_latency_ns` —
//!   mirrored read latency, split by whether the full replica set was
//!   available;
//! * `mirror.rebuild.copy_ns` — per-segment rebuild copy latency;
//! * `mirror.rebuild.segments_remaining` — dirty segments left on the
//!   child currently rebuilding (gauge);
//! * `mirror.rebuild.{segments_copied,segments_requeued}` — rebuild
//!   progress counters (a requeue is a segment redirtied by a foreground
//!   write racing its copy).
//!
//! Trace events land on [`TRACK_MIRROR`]: an instant per child fault and
//! a `mirror.degraded` span covering each child's fault → back-online
//! window.

use std::sync::Arc;

use noftl_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};

use flash_sim::SimTime;

/// Tracer track for mirror health and rebuild events (KV uses 100, the
/// flush pipeline 103).
pub const TRACK_MIRROR: u64 = 110;

#[derive(Debug)]
struct ChildObs {
    reads: Counter,
    programs: Counter,
    write_skips: Counter,
}

/// Pre-bound metric handles for one mirror.
#[derive(Debug)]
pub(crate) struct MirrorObs {
    registry: Arc<MetricsRegistry>,
    children: Vec<ChildObs>,
    faults: Counter,
    read_latency: Histogram,
    degraded_read_latency: Histogram,
    rebuild_copy: Histogram,
    segments_remaining: Gauge,
    segments_copied: Counter,
    segments_requeued: Counter,
}

impl MirrorObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>, children: usize) -> Self {
        let per_child = (0..children)
            .map(|i| ChildObs {
                reads: registry.counter(&format!("mirror.child{i}.reads")),
                programs: registry.counter(&format!("mirror.child{i}.programs")),
                write_skips: registry.counter(&format!("mirror.child{i}.write_skips")),
            })
            .collect();
        MirrorObs {
            faults: registry.counter("mirror.child_faults"),
            read_latency: registry.histogram("mirror.read.latency_ns", Unit::SimNanos),
            degraded_read_latency: registry
                .histogram("mirror.read.degraded_latency_ns", Unit::SimNanos),
            rebuild_copy: registry.histogram("mirror.rebuild.copy_ns", Unit::SimNanos),
            segments_remaining: registry.gauge("mirror.rebuild.segments_remaining"),
            segments_copied: registry.counter("mirror.rebuild.segments_copied"),
            segments_requeued: registry.counter("mirror.rebuild.segments_requeued"),
            children: per_child,
            registry,
        }
    }

    pub(crate) fn note_read(&self, child: usize, degraded: bool, issued: SimTime, done: SimTime) {
        if let Some(c) = self.children.get(child) {
            c.reads.inc();
        }
        let ns = done.as_nanos().saturating_sub(issued.as_nanos());
        self.read_latency.record(ns);
        if degraded {
            self.degraded_read_latency.record(ns);
        }
    }

    pub(crate) fn note_program(&self, child: usize) {
        if let Some(c) = self.children.get(child) {
            c.programs.inc();
        }
    }

    pub(crate) fn note_write_skip(&self, child: usize) {
        if let Some(c) = self.children.get(child) {
            c.write_skips.inc();
        }
    }

    pub(crate) fn note_fault(&self, child: usize, at: SimTime) {
        self.faults.inc();
        self.registry.tracer().instant(
            "mirror",
            "mirror.child_faulted",
            TRACK_MIRROR,
            at.as_nanos(),
            &[("child", child as u64)],
        );
    }

    /// A child returned to `Online`: close its degraded-mode span.
    pub(crate) fn note_back_online(&self, child: usize, faulted_at: SimTime, online_at: SimTime) {
        self.registry.tracer().span(
            "mirror",
            "mirror.degraded",
            TRACK_MIRROR,
            faulted_at.as_nanos(),
            online_at.as_nanos(),
            &[("child", child as u64)],
        );
    }

    pub(crate) fn note_segment_copied(&self, copy_ns: u64, requeued: bool) {
        self.rebuild_copy.record(copy_ns);
        if requeued {
            self.segments_requeued.inc();
        } else {
            self.segments_copied.inc();
        }
    }

    pub(crate) fn set_segments_remaining(&self, n: u64) {
        self.segments_remaining.set(n);
    }
}
