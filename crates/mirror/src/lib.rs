//! `noftl-mirror`: mirrored regions with online rebuild.
//!
//! A nexus-style replication layer over 2+ simulated NAND devices
//! ([`flash_sim::NandDevice`]), presented to the rest of the stack as a
//! single [`flash_sim::FlashBackend`] — `noftl-core` mounts a
//! [`MirrorDevice`] exactly like a bare device.
//!
//! * **Writes** fan out to every in-sync child at the same submit
//!   instant, so the children stay page-for-page identical.
//! * **Reads** are served by any in-sync child, picked queue-aware
//!   (earliest start on the target die) with a round-robin tie-break.
//! * **Device loss** (via [`flash_sim::DeviceLossInjector`]) drives a
//!   per-child health machine `Online → Faulted → Rebuilding → Online`;
//!   while a child is out, a [`SegmentMap`] — a bitmap with one bit per
//!   erase block — records exactly which segments it missed.
//! * **Online rebuild** drains the dirty map segment by segment while
//!   foreground traffic continues, protected by write-vs-rebuild range
//!   locks: a foreground write racing an in-flight copy skips the child
//!   and redirties the segment instead of colliding with it.
//! * **Persistence**: the mirror's health + segment maps travel inside
//!   the checkpoint as an opaque replication blob ([`MirrorBlob`],
//!   CRC-guarded).  A torn blob degrades to "rebuild everything" —
//!   never to silent staleness — and a valid one is cross-checked
//!   against the devices at mount by a shape-and-OOB verify scan, so
//!   writes that landed after the checkpoint are found too.

#![warn(missing_docs)]

mod device;
mod health;
mod obs;
mod rebuild;
mod segmap;

pub use device::MirrorDevice;
pub use health::ChildHealth;
pub use obs::TRACK_MIRROR;
pub use rebuild::{RebuildReport, SegmentCopy};
pub use segmap::{ChildBlob, MirrorBlob, SegmentMap, BLOB_MAGIC};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use flash_sim::{
        DeviceLossInjector, FlashBackend, FlashError, FlashGeometry, NandDevice, PageAddr,
        PageMetadata, SimTime, TimingModel,
    };

    use super::*;

    fn mirror(replicas: usize) -> MirrorDevice {
        MirrorDevice::new_fresh(replicas, FlashGeometry::small_test(), TimingModel::default())
            .unwrap()
    }

    fn page(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr::new(flash_sim::DieId(die), 0, block, page)
    }

    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; FlashGeometry::small_test().page_size as usize]
    }

    #[test]
    fn needs_two_children_and_matching_injector() {
        let g = FlashGeometry::small_test();
        let t = TimingModel::default();
        let registry = Arc::new(noftl_obs::MetricsRegistry::new());
        let one = vec![Arc::new(
            flash_sim::DeviceBuilder::new(g).timing(t).metrics(registry.clone()).build(),
        )];
        let err = MirrorDevice::new(one, Arc::new(DeviceLossInjector::new(1))).unwrap_err();
        assert!(matches!(err, FlashError::MirrorConfig { .. }));

        let two: Vec<Arc<NandDevice>> = (0..2)
            .map(|_| {
                Arc::new(
                    flash_sim::DeviceBuilder::new(g).timing(t).metrics(registry.clone()).build(),
                )
            })
            .collect();
        let err = MirrorDevice::new(two, Arc::new(DeviceLossInjector::new(3))).unwrap_err();
        assert!(matches!(err, FlashError::MirrorConfig { .. }));
    }

    #[test]
    fn writes_fan_out_identically() {
        let m = mirror(2);
        let at = SimTime::ZERO;
        for p in 0..4 {
            m.program_page(
                page(0, 0, p),
                &payload(p as u8 + 1),
                PageMetadata::new(7, p as u64),
                at,
            )
            .unwrap();
        }
        for child in m.children() {
            for p in 0..4 {
                let (data, meta, _) = child.read_page(page(0, 0, p), SimTime(1_000_000)).unwrap();
                assert_eq!(data, payload(p as u8 + 1));
                assert_eq!(meta.unwrap().object_id, 7);
            }
        }
        // Both children stored the same mirror-stamped epochs.
        assert_eq!(m.children()[0].current_epoch(), m.children()[1].current_epoch());
        assert!(m.fully_online());
    }

    #[test]
    fn lost_child_goes_faulted_and_accrues_dirt() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        let at = SimTime(1_000_000);
        m.program_page(page(0, 1, 0), &payload(2), PageMetadata::new(1, 1), at).unwrap();
        assert_eq!(m.health(1), ChildHealth::Faulted);
        assert_eq!(m.health(0), ChildHealth::Online);
        // Only the write the child missed is dirty, not the whole device.
        assert_eq!(m.dirty_segments(1), 1);
        assert!(m.children()[1].read_page(page(0, 1, 0), SimTime(2_000_000)).is_err());
    }

    #[test]
    fn degraded_reads_avoid_the_lost_child() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(9), PageMetadata::new(3, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        // Every read must come from child 0 even with the round-robin
        // cursor pointing at child 1.
        for _ in 0..8 {
            let (data, _, _) = m.read_page(page(0, 0, 0), SimTime(1_000_000)).unwrap();
            assert_eq!(data, payload(9));
        }
        let c0 = m.children()[0].stats().page_reads;
        let c1 = m.children()[1].stats().page_reads;
        assert_eq!(c0, 8);
        assert_eq!(c1, 0);
    }

    #[test]
    fn no_healthy_child_surfaces() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(0, SimTime(5));
        m.injector().arm(1, SimTime(5));
        let err = m.read_page(page(0, 0, 0), SimTime(1_000_000)).unwrap_err();
        assert!(matches!(err, FlashError::NoHealthyChild { .. }));
        let err = m
            .program_page(page(0, 0, 1), &payload(2), PageMetadata::new(1, 1), SimTime(1_000_000))
            .unwrap_err();
        assert!(matches!(err, FlashError::NoHealthyChild { .. }));
    }

    #[test]
    fn rebuild_copies_only_dirty_segments() {
        let m = mirror(2);
        let at = SimTime::ZERO;
        // Spread writes over 6 blocks while both children are healthy.
        for b in 0..6 {
            m.program_page(
                page(0, b, 0),
                &payload(b as u8 + 1),
                PageMetadata::new(2, b as u64),
                at,
            )
            .unwrap();
        }
        // Lose child 1, then touch exactly 2 segments.
        m.injector().arm(1, SimTime(100));
        let at = SimTime(10_000_000);
        m.program_page(page(1, 0, 0), &payload(41), PageMetadata::new(2, 100), at).unwrap();
        m.program_page(page(1, 1, 0), &payload(42), PageMetadata::new(2, 101), at).unwrap();
        assert_eq!(m.dirty_segments(1), 2);

        let programs_before = m.children()[1].stats().page_programs;
        m.injector().clear(1);
        m.start_rebuild(1, SimTime(20_000_000)).unwrap();
        let report = m.rebuild(1, 4, SimTime(20_000_000)).unwrap();
        assert!(report.child_online);
        assert_eq!(report.segments_copied, 2);
        assert_eq!(report.segments_requeued, 0);
        assert_eq!(report.pages_copied, 2);
        // The rebuild programmed exactly the missed pages, nothing else.
        assert_eq!(m.children()[1].stats().page_programs - programs_before, 2);
        assert_eq!(m.health(1), ChildHealth::Online);
        assert_eq!(m.dirty_segments(1), 0);
        let (data, _, _) = m.children()[1].read_page(page(1, 0, 0), SimTime(30_000_000)).unwrap();
        assert_eq!(data, payload(41));
    }

    #[test]
    fn start_rebuild_requires_cleared_injector_and_faulted_child() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        // Not faulted yet.
        assert!(m.start_rebuild(1, SimTime(1)).is_err());
        m.injector().arm(1, SimTime(10));
        m.program_page(page(0, 1, 0), &payload(2), PageMetadata::new(1, 1), SimTime(1_000))
            .unwrap();
        // Faulted but still lost.
        let err = m.start_rebuild(1, SimTime(2_000)).unwrap_err();
        assert!(matches!(err, FlashError::MirrorConfig { .. }));
        m.injector().clear(1);
        m.start_rebuild(1, SimTime(3_000)).unwrap();
        assert_eq!(m.health(1), ChildHealth::Rebuilding);
    }

    #[test]
    fn foreground_write_racing_a_copy_redirties_the_segment() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        let at = SimTime(1_000_000);
        m.program_page(page(0, 2, 0), &payload(2), PageMetadata::new(1, 1), at).unwrap();
        m.injector().clear(1);
        m.start_rebuild(1, SimTime(2_000_000)).unwrap();
        let seg = m.segment_of(page(0, 2, 0).block());
        assert_eq!(m.dirty_segments(1), 1);

        // Simulate the copy being in flight, then race a foreground write
        // into the locked segment.
        m.test_lock_segment(seg);
        let skips_before = m.children()[1].stats().page_programs;
        m.program_page(page(0, 2, 1), &payload(3), PageMetadata::new(1, 2), SimTime(3_000_000))
            .unwrap();
        // Child 1 did not receive the program...
        assert_eq!(m.children()[1].stats().page_programs, skips_before);
        // ...and the unlock reports the redirty, keeping the segment dirty.
        assert!(m.test_unlock_segment(seg));
        assert_eq!(m.dirty_segments(1), 1);

        // The real rebuild then converges: first pass requeues nothing
        // here (lock released), copies the segment including the raced
        // write.
        let report = m.rebuild(1, 4, SimTime(4_000_000)).unwrap();
        assert!(report.child_online);
        let (data, _, _) = m.children()[1].read_page(page(0, 2, 1), SimTime(9_000_000)).unwrap();
        assert_eq!(data, payload(3));
    }

    #[test]
    fn rebuilding_child_serves_reads_only_from_clean_segments() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        m.program_page(page(0, 3, 0), &payload(2), PageMetadata::new(1, 1), SimTime(1_000))
            .unwrap();
        m.injector().clear(1);
        m.start_rebuild(1, SimTime(2_000)).unwrap();
        // Dirty segment: every read must hit child 0.
        let r0 = m.children()[0].stats().page_reads;
        for _ in 0..4 {
            m.read_page(page(0, 3, 0), SimTime(5_000_000)).unwrap();
        }
        assert_eq!(m.children()[0].stats().page_reads - r0, 4);
    }

    #[test]
    fn blob_roundtrip_through_backend_hooks() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        m.program_page(page(0, 1, 0), &payload(2), PageMetadata::new(1, 1), SimTime(1_000))
            .unwrap();
        let blob = m.replication_blob().unwrap();
        let decoded = MirrorBlob::decode(&blob).unwrap();
        assert_eq!(decoded.children.len(), 2);
        assert_eq!(decoded.children[0].health, ChildHealth::Online);
        assert_eq!(decoded.children[1].health, ChildHealth::Faulted);
        assert_eq!(decoded.children[1].dirty.dirty_count(), 1);
        assert_eq!(decoded.watermark, m.current_epoch());
    }

    #[test]
    fn torn_blob_restores_to_rebuild_everything() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        let mut blob = m.replication_blob().unwrap();
        let last = blob.len() - 1;
        blob[last] ^= 0x40;
        m.restore_replication(Some(&blob), SimTime(1_000_000)).unwrap();
        assert_eq!(m.health(0), ChildHealth::Online);
        assert_eq!(m.health(1), ChildHealth::Faulted);
        assert_eq!(m.dirty_segments(1), m.segment_count());
    }

    #[test]
    fn restore_verifies_post_blob_writes() {
        let m = mirror(2);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        // Blob cut while fully in sync: both children clean.
        let blob = m.replication_blob().unwrap();
        // Writes after the blob reach only child 0 (child 1 lost), so at
        // restore time the blob alone would claim child 1 is clean.
        m.injector().arm(1, SimTime(10));
        m.program_page(page(2, 5, 0), &payload(7), PageMetadata::new(4, 9), SimTime(1_000_000))
            .unwrap();
        m.injector().clear(1);
        let now = m.restore_replication(Some(&blob), SimTime(2_000_000)).unwrap();
        assert!(now >= SimTime(2_000_000));
        // The verify scan catches the divergence the blob missed.
        assert_eq!(m.health(1), ChildHealth::Faulted);
        assert_eq!(m.dirty_segments(1), 1);
        assert_eq!(m.health(0), ChildHealth::Online);
    }

    #[test]
    fn restore_on_pristine_mirror_keeps_everyone_online() {
        let m = mirror(3);
        m.restore_replication(None, SimTime::ZERO).unwrap();
        assert!(m.fully_online());
    }

    #[test]
    fn three_way_mirror_survives_double_fault() {
        let m = mirror(3);
        m.program_page(page(0, 0, 0), &payload(1), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        m.injector().arm(1, SimTime(10));
        m.injector().arm(2, SimTime(10));
        let (data, _, _) = m.read_page(page(0, 0, 0), SimTime(1_000_000)).unwrap();
        assert_eq!(data, payload(1));
        m.program_page(page(0, 1, 0), &payload(2), PageMetadata::new(1, 1), SimTime(1_000_000))
            .unwrap();
        assert_eq!(m.health(0), ChildHealth::Online);
        assert_eq!(m.health(1), ChildHealth::Faulted);
        assert_eq!(m.health(2), ChildHealth::Faulted);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Under an arbitrary schedule of child losses, rebuilds and
            /// mirrored writes, a mirrored read always returns the last
            /// acknowledged write of the page.
            #[test]
            fn reads_return_last_acked_write(
                seed in any::<u64>(),
                lose_at_step in 1u64..12,
                rebuild_at_step in 12u64..20,
            ) {
                let m = mirror(2);
                let mut clock = SimTime(1_000);
                let mut acked: Vec<(PageAddr, u8)> = Vec::new();
                let mut x = seed;
                let mut next_rand = move || {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    x >> 33
                };
                for step in 0..24u64 {
                    if step == lose_at_step {
                        m.injector().arm(1, clock);
                    }
                    if step == rebuild_at_step {
                        m.injector().clear(1);
                        m.start_rebuild(1, clock).unwrap();
                        let report = m.rebuild(1, 4, clock).unwrap();
                        prop_assert!(report.child_online);
                        clock = clock.max(report.completed_at);
                    }
                    let r = next_rand();
                    let block = (r % 8) as u32;
                    let die = ((r >> 8) % 4) as u32;
                    let tag = (step + 1) as u8;
                    // Always program the next free page of the block.
                    let info = m
                        .block_info(flash_sim::BlockAddr::new(flash_sim::DieId(die), 0, block))
                        .unwrap();
                    if info.write_ptr >= 8 {
                        continue;
                    }
                    let addr = page(die, block, info.write_ptr);
                    m.program_page(addr, &payload(tag), PageMetadata::new(1, step), clock)
                        .unwrap();
                    acked.push((addr, tag));
                    clock = SimTime(clock.as_nanos() + 500_000);
                }
                // Every acknowledged write must be readable through the
                // mirror regardless of which child serves it.
                for (addr, tag) in acked {
                    let (data, _, _) = m.read_page(addr, clock).unwrap();
                    prop_assert_eq!(data, payload(tag));
                }
            }
        }
    }
}
