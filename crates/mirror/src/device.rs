//! The mirrored backend: N simulated NAND devices behind one
//! [`FlashBackend`].
//!
//! Writes fan out to every child that is in sync for the targeted
//! segment, all queued at the caller's submit time so the children stay
//! page-for-page identical.  Reads are served by any in-sync child,
//! chosen queue-aware (earliest start on the target die) with a
//! round-robin tie-break.  Device loss is injected through the shared
//! [`DeviceLossInjector`]: the mirror consults it at submit time, drives
//! the lost child's health machine to [`ChildHealth::Faulted`] and keeps
//! serving from the survivors while the child's [`SegmentMap`] records
//! every write it misses.
//!
//! # Locking
//!
//! Two mirror-level locks slot into the workspace's total order
//! `manager < pending-io < mirror < mirror-range < queue < die <
//! channel < shared`:
//!
//! * [`LockClass::Mirror`] guards health states and dirty maps and is
//!   deliberately held across child-queue submission — planning a
//!   fan-out and executing it are atomic with respect to rebuild
//!   progress, so a segment can never be locked for copy between the
//!   plan and the submit.
//! * [`LockClass::MirrorRange`] guards the write-vs-rebuild range locks:
//!   the set of segments whose copy is in flight and the set redirtied
//!   by foreground writes racing those copies.
//!
//! # Epochs
//!
//! The mirror owns the write-epoch sequence: a program arriving with
//! `epoch == 0` is stamped from the mirror's counter before fan-out, so
//! every child stores the *same* epoch for the same logical write and
//! each child's own counter ratchets to the maximum it has stored
//! (persisted via device snapshots).  After a reboot the child with the
//! highest epoch is therefore guaranteed to hold every acknowledged
//! write, which is how [`MirrorDevice::restore_replication`] picks its
//! rebuild source.

use std::any::Any;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::lockorder::{self, LockClass, TrackedGuard};
use flash_sim::queue::{CommandQueue, FlashCommand};
use flash_sim::{
    BlockAddr, BlockInfo, DeviceLossInjector, DeviceStats, DieId, DieLoad, DieStats, FlashBackend,
    FlashError, FlashGeometry, NandDevice, OpOutcome, PageAddr, PageMetadata, PageState, Result,
    SimTime, TimingModel, WearSummary,
};
use noftl_obs::MetricsRegistry;

use crate::health::ChildHealth;
use crate::obs::MirrorObs;
use crate::segmap::{ChildBlob, MirrorBlob, SegmentMap};

/// Replication state of one child.
#[derive(Debug)]
pub(crate) struct ChildState {
    pub(crate) health: ChildHealth,
    /// Segments this child is known to be stale for.
    pub(crate) dirty: SegmentMap,
    /// Fail-safe flag: treat *every* segment as dirty regardless of the
    /// map (set when no trustworthy staleness information exists — torn
    /// blob, child attached with unknown history).  Cleared when a
    /// rebuild materialises the map or a restore verifies the child.
    pub(crate) assume_all_dirty: bool,
    /// When the child left `Online`, for the degraded-mode trace span.
    pub(crate) faulted_at: Option<SimTime>,
}

impl ChildState {
    pub(crate) fn is_dirty(&self, seg: u64) -> bool {
        self.assume_all_dirty || self.dirty.is_dirty(seg)
    }

    fn mark_dirty(&mut self, seg: u64) {
        self.dirty.mark(seg);
    }
}

#[derive(Debug)]
pub(crate) struct MirrorState {
    pub(crate) children: Vec<ChildState>,
}

/// Write-vs-rebuild range locks.
#[derive(Debug, Default)]
pub(crate) struct RangeLocks {
    /// Segments whose rebuild copy is in flight right now.
    pub(crate) locked: HashSet<u64>,
    /// Locked segments a foreground write raced; the rebuild must not
    /// clear their dirty bit when the copy lands.
    pub(crate) redirtied: HashSet<u64>,
}

/// A nexus-style replicated flash backend over 2+ [`NandDevice`]s.
pub struct MirrorDevice {
    geometry: FlashGeometry,
    children: Vec<Arc<NandDevice>>,
    queues: Vec<CommandQueue>,
    injector: Arc<DeviceLossInjector>,
    /// Mirror-owned write-epoch sequence (see module docs).
    epoch: AtomicU64,
    /// Round-robin cursor for read tie-breaking.
    rr: AtomicUsize,
    state: Mutex<MirrorState>,
    ranges: Mutex<RangeLocks>,
    pub(crate) obs: MirrorObs,
}

impl std::fmt::Debug for MirrorDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.mirror_shard();
        let healths: Vec<ChildHealth> = state.children.iter().map(|c| c.health).collect();
        f.debug_struct("MirrorDevice")
            .field("children", &self.children.len())
            .field("healths", &healths)
            .field("epoch", &self.epoch.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl MirrorDevice {
    /// Assemble a mirror over `children`, which must be at least two
    /// devices of identical geometry that store page payloads, with a
    /// loss injector sized to match.
    ///
    /// Pristine children all start `Online`.  If any child already holds
    /// data, the child with the highest stored write epoch becomes the
    /// only `Online` member and every other child starts `Faulted` with
    /// the fail-safe "assume everything stale" map until
    /// [`MirrorDevice::restore_replication`] (or a full rebuild)
    /// establishes what they actually hold.
    pub fn new(
        children: Vec<Arc<NandDevice>>,
        injector: Arc<DeviceLossInjector>,
    ) -> Result<MirrorDevice> {
        if children.len() < 2 {
            return Err(FlashError::MirrorConfig {
                message: format!("a mirror needs at least 2 children, got {}", children.len()),
            });
        }
        if injector.children() != children.len() {
            return Err(FlashError::MirrorConfig {
                message: format!(
                    "loss injector covers {} children, mirror has {}",
                    injector.children(),
                    children.len()
                ),
            });
        }
        let geometry = *children[0].geometry();
        for (i, child) in children.iter().enumerate() {
            if *child.geometry() != geometry {
                return Err(FlashError::MirrorConfig {
                    message: format!("child {i} geometry differs from child 0"),
                });
            }
            if !child.stores_data() {
                return Err(FlashError::MirrorConfig {
                    message: format!("child {i} stores no page payloads; mirroring needs them"),
                });
            }
        }
        let epoch = children.iter().map(|c| c.current_epoch()).max().unwrap_or(0);
        let segments = geometry.total_blocks();
        let pristine: Vec<bool> =
            children.iter().map(|c| geometry.dies().all(|d| !c.die_touched(d))).collect();
        let all_pristine = pristine.iter().all(|&p| p);
        let source = Self::pick_source(&children);
        let states = (0..children.len())
            .map(|i| {
                if all_pristine || i == source {
                    ChildState {
                        health: ChildHealth::Online,
                        dirty: SegmentMap::all_clean(segments),
                        assume_all_dirty: false,
                        faulted_at: None,
                    }
                } else {
                    ChildState {
                        health: ChildHealth::Faulted,
                        dirty: SegmentMap::all_clean(segments),
                        assume_all_dirty: true,
                        faulted_at: None,
                    }
                }
            })
            .collect();
        let queues = children.iter().map(|c| CommandQueue::new(c.clone())).collect();
        let obs = MirrorObs::new(Arc::clone(children[0].metrics()), children.len());
        Ok(MirrorDevice {
            geometry,
            queues,
            injector,
            epoch: AtomicU64::new(epoch),
            rr: AtomicUsize::new(0),
            state: Mutex::new(MirrorState { children: states }),
            ranges: Mutex::new(RangeLocks::default()),
            obs,
            children,
        })
    }

    /// Build a mirror of `replicas` fresh devices sharing one metrics
    /// registry (the convenient path for tests and benches).
    pub fn new_fresh(
        replicas: usize,
        geometry: FlashGeometry,
        timing: TimingModel,
    ) -> Result<MirrorDevice> {
        let registry = Arc::new(MetricsRegistry::new());
        let children: Vec<Arc<NandDevice>> = (0..replicas)
            .map(|_| {
                Arc::new(
                    flash_sim::DeviceBuilder::new(geometry)
                        .timing(timing)
                        .metrics(Arc::clone(&registry))
                        .build(),
                )
            })
            .collect();
        let injector = Arc::new(DeviceLossInjector::new(replicas));
        MirrorDevice::new(children, injector)
    }

    /// The child holding the highest stored write epoch — the only
    /// device guaranteed to hold every acknowledged write (ties prefer
    /// the lowest index).
    fn pick_source(children: &[Arc<NandDevice>]) -> usize {
        let mut best = 0;
        for (i, c) in children.iter().enumerate().skip(1) {
            if c.current_epoch() > children[best].current_epoch() {
                best = i;
            }
        }
        best
    }

    /// The mirror's children (test harnesses snapshot them and arm their
    /// power-cut injectors through this).
    pub fn children(&self) -> &[Arc<NandDevice>] {
        &self.children
    }

    /// The shared device-loss injector.
    pub fn injector(&self) -> &Arc<DeviceLossInjector> {
        &self.injector
    }

    /// Number of rebuild segments (one per erase block).
    pub fn segment_count(&self) -> u64 {
        self.geometry.total_blocks()
    }

    /// Linear segment index of a block.
    pub fn segment_of(&self, block: BlockAddr) -> u64 {
        (block.die.0 as u64 * self.geometry.planes_per_die as u64 + block.plane as u64)
            * self.geometry.blocks_per_plane as u64
            + block.block as u64
    }

    /// The block a segment index denotes (inverse of
    /// [`MirrorDevice::segment_of`]).
    pub fn block_of(&self, seg: u64) -> BlockAddr {
        let bpp = self.geometry.blocks_per_plane as u64;
        let ppd = self.geometry.planes_per_die as u64;
        BlockAddr::new(
            DieId((seg / (bpp * ppd)) as u32),
            ((seg / bpp) % ppd) as u32,
            (seg % bpp) as u32,
        )
    }

    /// Current health of `child`.
    pub fn health(&self, child: usize) -> ChildHealth {
        self.mirror_shard().children[child].health
    }

    /// Number of segments `child` is stale for (the full segment count
    /// while the fail-safe "assume everything dirty" flag is set).
    pub fn dirty_segments(&self, child: usize) -> u64 {
        let state = self.mirror_shard();
        let c = &state.children[child];
        if c.assume_all_dirty {
            self.segment_count()
        } else {
            c.dirty.dirty_count()
        }
    }

    /// True when every child is `Online`.
    pub fn fully_online(&self) -> bool {
        self.mirror_shard().children.iter().all(|c| c.health == ChildHealth::Online)
    }

    pub(crate) fn mirror_shard(&self) -> TrackedGuard<'_, MirrorState> {
        lockorder::lock_tracked(LockClass::Mirror, &self.state)
    }

    pub(crate) fn range_shard(&self) -> TrackedGuard<'_, RangeLocks> {
        lockorder::lock_tracked(LockClass::MirrorRange, &self.ranges)
    }

    pub(crate) fn queue(&self, child: usize) -> &CommandQueue {
        &self.queues[child]
    }

    /// Fault every child whose scheduled loss instant has been reached
    /// by `at`.  Called at the top of every timed operation.
    pub(crate) fn sweep_losses(&self, state: &mut MirrorState, at: SimTime) {
        for (i, child) in state.children.iter_mut().enumerate() {
            if child.health != ChildHealth::Faulted && self.injector.is_lost(i, at) {
                // Online -> Faulted and Rebuilding -> Faulted are both
                // legal, so the transition cannot fail here; if the
                // machine ever changed, keeping the old health is safer
                // than panicking mid-I/O.
                if let Ok(next) = child.health.check_transition(ChildHealth::Faulted) {
                    child.health = next;
                }
                child.faulted_at = Some(self.injector.loss_at(i).unwrap_or(at));
                self.obs.note_fault(i, at);
            }
        }
    }

    fn submit_and_wait(&self, child: usize, cmd: FlashCommand, at: SimTime) -> Result<OpOutcome> {
        let h = self.queues[child].submit(cmd, at);
        self.queues[child].wait(h)?.result.map(|out| out.outcome)
    }

    /// Plan and execute a fan-out mutation of `seg`: submit to in-sync
    /// children, record a dirty segment for everyone else, honouring the
    /// rebuild range locks.  `make_cmd` builds the per-child command.
    fn fan_out(
        &self,
        seg: u64,
        dirty_only_seg: Option<u64>,
        at: SimTime,
        make_cmd: impl Fn() -> FlashCommand,
    ) -> Result<OpOutcome> {
        let mut state = self.mirror_shard();
        self.sweep_losses(&mut state, at);
        // (child index, replica?): programs to a `Rebuilding` child use
        // the replica path so its epoch counter — the marker of its
        // consistent history — stays put until the rebuild commits.
        let mut targets: Vec<(usize, bool)> = Vec::new();
        {
            let mut ranges = self.range_shard();
            for (i, child) in state.children.iter_mut().enumerate() {
                match child.health {
                    ChildHealth::Online => targets.push((i, false)),
                    ChildHealth::Faulted => {
                        child.mark_dirty(dirty_only_seg.unwrap_or(seg));
                        self.obs.note_write_skip(i);
                    }
                    ChildHealth::Rebuilding => {
                        if ranges.locked.contains(&seg) {
                            ranges.redirtied.insert(seg);
                            self.obs.note_write_skip(i);
                        } else if child.is_dirty(seg)
                            || dirty_only_seg.is_some_and(|d| child.is_dirty(d))
                        {
                            // The stale copy will be overwritten by the
                            // rebuild; applying now would diverge from
                            // the source's block layout.
                            child.mark_dirty(dirty_only_seg.unwrap_or(seg));
                            self.obs.note_write_skip(i);
                        } else {
                            targets.push((i, true));
                        }
                    }
                }
            }
        }
        if targets.is_empty() {
            return Err(FlashError::NoHealthyChild { at });
        }
        // Submit while still holding the mirror lock (Mirror < Queue):
        // no rebuild can range-lock `seg` between plan and execution.
        let mut merged: Option<OpOutcome> = None;
        let mut first_err: Option<FlashError> = None;
        for &(i, replica) in &targets {
            let result = match make_cmd() {
                FlashCommand::Program { addr, data, meta } if replica => {
                    self.children[i].program_replica(addr, &data, meta, at)
                }
                cmd => self.submit_and_wait(i, cmd, at),
            };
            match result {
                Ok(out) => {
                    self.obs.note_program(i);
                    merged = Some(match merged {
                        None => out,
                        Some(m) => OpOutcome {
                            started_at: m.started_at.min(out.started_at),
                            completed_at: m.completed_at.max(out.completed_at),
                        },
                    });
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        match (first_err, merged) {
            (Some(e), _) => Err(e),
            (None, Some(out)) => Ok(out),
            // Unreachable (targets is non-empty and nothing failed), but
            // degrade to the no-target error rather than panicking.
            (None, None) => Err(FlashError::NoHealthyChild { at }),
        }
    }

    /// Serve a read command from the best in-sync child.
    fn read_from_best(
        &self,
        addr: PageAddr,
        at: SimTime,
        metadata_only: bool,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        let seg = self.segment_of(addr.block());
        let mut state = self.mirror_shard();
        self.sweep_losses(&mut state, at);
        let candidates: Vec<usize> = {
            let ranges = self.range_shard();
            state
                .children
                .iter()
                .enumerate()
                .filter(|(_, c)| match c.health {
                    ChildHealth::Online => true,
                    ChildHealth::Rebuilding => !c.is_dirty(seg) && !ranges.locked.contains(&seg),
                    ChildHealth::Faulted => false,
                })
                .map(|(i, _)| i)
                .collect()
        };
        if candidates.is_empty() {
            return Err(FlashError::NoHealthyChild { at });
        }
        let degraded = candidates.len() < self.children.len();
        // Queue-aware selection: earliest start on the target die wins;
        // the round-robin cursor rotates the scan order so ties spread
        // over the replica set.
        let rr = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut best = candidates[rr % candidates.len()];
        let mut best_start = self.children[best].die_load(addr.die, at).earliest_start(at);
        for off in 1..candidates.len() {
            let i = candidates[(rr + off) % candidates.len()];
            let start = self.children[i].die_load(addr.die, at).earliest_start(at);
            if start < best_start {
                best = i;
                best_start = start;
            }
        }
        let cmd = if metadata_only {
            FlashCommand::MetadataRead { addr }
        } else {
            FlashCommand::Read { addr }
        };
        let h = self.queues[best].submit(cmd, at);
        let out = self.queues[best].wait(h)?.result?;
        self.obs.note_read(best, degraded, at, out.outcome.completed_at);
        Ok((out.data, out.meta, out.outcome))
    }

    /// The child untimed state probes are served from: the first
    /// `Online` child (there is always at least one in any usable
    /// mirror; falls back to child 0 for a fully-faulted mirror so the
    /// probe itself cannot fail).
    fn canonical_child(&self) -> usize {
        let state = self.mirror_shard();
        state
            .children
            .iter()
            .position(|c| c.health == ChildHealth::Online)
            .or_else(|| state.children.iter().position(|c| c.health == ChildHealth::Rebuilding))
            .unwrap_or(0)
    }

    /// Children whose load should gate queue-aware placement: everything
    /// that currently receives writes.
    fn load_children(&self) -> Vec<usize> {
        let state = self.mirror_shard();
        let active: Vec<usize> = state
            .children
            .iter()
            .enumerate()
            .filter(|(_, c)| c.health != ChildHealth::Faulted)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            vec![0]
        } else {
            active
        }
    }

    /// Compare `child` against `source` and return the exact set of
    /// segments where they differ: block shape (state, write pointer,
    /// valid/invalid counts) first, then per-page OOB metadata for
    /// blocks whose shape matches.  Erase counts are deliberately
    /// ignored — a rebuilt block has extra erases but identical content.
    ///
    /// Timed metadata reads advance `*now`; both devices are probed at
    /// the same instants so the scans overlap like the hardware would.
    fn verify_dirty(&self, source: usize, child: usize, now: &mut SimTime) -> Result<SegmentMap> {
        let src = self.children[source].as_ref();
        let tgt = self.children[child].as_ref();
        let mut map = SegmentMap::all_clean(self.segment_count());
        for die in self.geometry.dies() {
            if !src.die_touched(die) && !tgt.die_touched(die) {
                continue;
            }
            for plane in 0..self.geometry.planes_per_die {
                for block in 0..self.geometry.blocks_per_plane {
                    let addr = BlockAddr::new(die, plane, block);
                    let sb = src.block_info(addr)?;
                    let tb = tgt.block_info(addr)?;
                    let shape =
                        |b: &BlockInfo| (b.state, b.write_ptr, b.valid_pages, b.invalid_pages);
                    if shape(&sb) != shape(&tb) {
                        map.mark(self.segment_of(addr));
                        continue;
                    }
                    if sb.write_ptr == 0 || sb.state == flash_sim::BlockState::Bad {
                        continue;
                    }
                    for page in 0..sb.write_ptr {
                        let p = addr.page(page);
                        let (sm, so) = src.read_metadata(p, *now)?;
                        let (tm, to) = tgt.read_metadata(p, *now)?;
                        *now = (*now).max(so.completed_at).max(to.completed_at);
                        // Identical OOB (object, page, epoch, checksum)
                        // implies identical payload; anything else —
                        // including both sides torn — is stale.
                        if sm.is_none() || sm != tm {
                            map.mark(self.segment_of(addr));
                            break;
                        }
                    }
                }
            }
        }
        Ok(map)
    }

    #[cfg(test)]
    pub(crate) fn test_lock_segment(&self, seg: u64) {
        self.range_shard().locked.insert(seg);
    }

    #[cfg(test)]
    pub(crate) fn test_unlock_segment(&self, seg: u64) -> bool {
        let mut ranges = self.range_shard();
        ranges.locked.remove(&seg);
        ranges.redirtied.remove(&seg)
    }
}

impl FlashBackend for MirrorDevice {
    fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    fn timing(&self) -> &TimingModel {
        self.children[0].timing()
    }

    fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.children[0].metrics()
    }

    fn read_page(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        self.read_from_best(addr, at, false)
    }

    fn read_metadata(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        self.read_from_best(addr, at, true).map(|(_, meta, out)| (meta, out))
    }

    fn program_page(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
    ) -> Result<OpOutcome> {
        let mut meta = meta;
        if meta.epoch == 0 {
            meta.epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        } else {
            self.epoch.fetch_max(meta.epoch, Ordering::AcqRel);
        }
        let seg = self.segment_of(addr.block());
        let data = data.to_vec();
        self.fan_out(seg, None, at, || FlashCommand::Program { addr, data: data.clone(), meta })
    }

    fn erase_block(&self, addr: BlockAddr, at: SimTime) -> Result<OpOutcome> {
        let seg = self.segment_of(addr);
        self.fan_out(seg, None, at, || FlashCommand::Erase { block: addr })
    }

    fn copyback(&self, src: PageAddr, dst: PageAddr, at: SimTime) -> Result<OpOutcome> {
        // A child can only copy back from its own array if its copy of
        // the *source* segment is in sync; otherwise the destination
        // segment goes dirty and the rebuild recreates it later.
        let src_seg = self.segment_of(src.block());
        let dst_seg = self.segment_of(dst.block());
        self.fan_out(src_seg, Some(dst_seg), at, || FlashCommand::Copyback { src, dst })
    }

    fn mark_invalid(&self, addr: PageAddr) -> Result<()> {
        let seg = self.segment_of(addr.block());
        let mut state = self.mirror_shard();
        let mut ranges = self.range_shard();
        for (i, child) in state.children.iter_mut().enumerate() {
            match child.health {
                ChildHealth::Online => self.children[i].mark_invalid(addr)?,
                ChildHealth::Faulted => child.mark_dirty(seg),
                ChildHealth::Rebuilding => {
                    if ranges.locked.contains(&seg) {
                        ranges.redirtied.insert(seg);
                    } else if child.is_dirty(seg) {
                        child.mark_dirty(seg);
                    } else {
                        self.children[i].mark_invalid(addr)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn retire_block(&self, addr: BlockAddr) -> Result<()> {
        let seg = self.segment_of(addr);
        let mut state = self.mirror_shard();
        let mut ranges = self.range_shard();
        for (i, child) in state.children.iter_mut().enumerate() {
            match child.health {
                ChildHealth::Online => self.children[i].retire_block(addr)?,
                ChildHealth::Faulted => child.mark_dirty(seg),
                ChildHealth::Rebuilding => {
                    if ranges.locked.contains(&seg) {
                        ranges.redirtied.insert(seg);
                    } else if child.is_dirty(seg) {
                        child.mark_dirty(seg);
                    } else {
                        self.children[i].retire_block(addr)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn block_info(&self, addr: BlockAddr) -> Result<BlockInfo> {
        self.children[self.canonical_child()].block_info(addr)
    }

    fn page_state(&self, addr: PageAddr) -> Result<PageState> {
        self.children[self.canonical_child()].page_state(addr)
    }

    fn stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for child in &self.children {
            let s = child.stats();
            total.page_reads += s.page_reads;
            total.page_programs += s.page_programs;
            total.block_erases += s.block_erases;
            total.copybacks += s.copybacks;
            total.metadata_reads += s.metadata_reads;
            total.bytes_transferred += s.bytes_transferred;
            total.read_latency_sum += s.read_latency_sum;
            total.program_latency_sum += s.program_latency_sum;
            total.erase_latency_sum += s.erase_latency_sum;
            total.copyback_latency_sum += s.copyback_latency_sum;
            total.errors += s.errors;
            total.queue_depth_hwm = total.queue_depth_hwm.max(s.queue_depth_hwm);
        }
        total
    }

    fn die_stats(&self) -> Vec<DieStats> {
        let mut merged = vec![DieStats::default(); self.geometry.total_dies() as usize];
        for child in &self.children {
            for (slot, d) in merged.iter_mut().zip(child.die_stats()) {
                slot.ops += d.ops;
                slot.busy_time += d.busy_time;
                slot.total_erases += d.total_erases;
                slot.max_erase_count = slot.max_erase_count.max(d.max_erase_count);
                slot.queue_depth_hwm = slot.queue_depth_hwm.max(d.queue_depth_hwm);
            }
        }
        merged
    }

    fn wear_summary(&self) -> WearSummary {
        // Merge the per-child summaries: totals add, extremes combine,
        // the mean averages (children have identical block counts) and
        // the spread conservatively reports the widest child.
        let summaries: Vec<WearSummary> = self.children.iter().map(|c| c.wear_summary()).collect();
        let n = summaries.len() as f64;
        WearSummary {
            total_erases: summaries.iter().map(|s| s.total_erases).sum(),
            min_erase_count: summaries.iter().map(|s| s.min_erase_count).min().unwrap_or(0),
            max_erase_count: summaries.iter().map(|s| s.max_erase_count).max().unwrap_or(0),
            mean_erase_count: summaries.iter().map(|s| s.mean_erase_count).sum::<f64>() / n,
            stddev_erase_count: summaries.iter().map(|s| s.stddev_erase_count).fold(0.0, f64::max),
            bad_blocks: summaries.iter().map(|s| s.bad_blocks).sum(),
        }
    }

    fn quiesce_time(&self) -> SimTime {
        self.children.iter().map(|c| c.quiesce_time()).max().unwrap_or(SimTime::ZERO)
    }

    fn die_busy_until(&self, die: DieId) -> SimTime {
        self.load_children()
            .into_iter()
            .map(|i| self.children[i].die_busy_until(die))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn die_load(&self, die: DieId, at: SimTime) -> DieLoad {
        // Writes fan out to every non-faulted child, so the effective
        // load of a die is the worst over the active replica set.
        let mut load = DieLoad::default();
        for i in self.load_children() {
            let l = self.children[i].die_load(die, at);
            load.busy_until = load.busy_until.max(l.busy_until);
            load.queue_depth = load.queue_depth.max(l.queue_depth);
        }
        load
    }

    fn die_loads(&self, at: SimTime) -> Vec<DieLoad> {
        let mut merged = vec![DieLoad::default(); self.geometry.total_dies() as usize];
        for i in self.load_children() {
            for (slot, l) in merged.iter_mut().zip(self.children[i].die_loads(at)) {
                slot.busy_until = slot.busy_until.max(l.busy_until);
                slot.queue_depth = slot.queue_depth.max(l.queue_depth);
            }
        }
        merged
    }

    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn stores_data(&self) -> bool {
        true
    }

    fn die_touched(&self, die: DieId) -> bool {
        self.children.iter().any(|c| c.die_touched(die))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn replication_blob(&self) -> Option<Vec<u8>> {
        let state = self.mirror_shard();
        let ranges = self.range_shard();
        let children = state
            .children
            .iter()
            .map(|c| {
                let mut dirty = if c.assume_all_dirty {
                    SegmentMap::all_dirty(self.segment_count())
                } else {
                    c.dirty.clone()
                };
                if c.health == ChildHealth::Rebuilding {
                    // Copies still in flight (and anything they raced)
                    // must not be trusted across a crash.
                    for &s in ranges.locked.iter().chain(ranges.redirtied.iter()) {
                        dirty.mark(s);
                    }
                }
                ChildBlob { health: c.health, dirty }
            })
            .collect();
        let blob = MirrorBlob { watermark: self.epoch.load(Ordering::Acquire), children };
        Some(blob.encode())
    }

    fn restore_replication(&self, blob: Option<&[u8]>, at: SimTime) -> Result<SimTime> {
        let mut now = at;
        // Nothing written anywhere: a fresh mirror stays fully online.
        if self.geometry.dies().all(|d| !self.die_touched(d)) {
            let mut state = self.mirror_shard();
            for c in state.children.iter_mut() {
                c.health = ChildHealth::Online;
                c.dirty = SegmentMap::all_clean(self.segment_count());
                c.assume_all_dirty = false;
            }
            return Ok(now);
        }
        let source = Self::pick_source(&self.children);
        let decoded = blob
            .and_then(MirrorBlob::decode)
            .filter(|b| b.children.len() == self.children.len())
            .filter(|b| b.children.iter().all(|c| c.dirty.segments() == self.segment_count()));
        // Compute every child's staleness before mutating any state.
        let mut plans: Vec<(ChildHealth, SegmentMap, bool)> =
            Vec::with_capacity(self.children.len());
        for i in 0..self.children.len() {
            if i == source {
                plans.push((
                    ChildHealth::Online,
                    SegmentMap::all_clean(self.segment_count()),
                    false,
                ));
                continue;
            }
            if self.injector.is_lost(i, at) {
                // The child is not reachable, so nothing can be
                // verified about it: fail safe until it reattaches.
                plans.push((
                    ChildHealth::Faulted,
                    SegmentMap::all_clean(self.segment_count()),
                    true,
                ));
                continue;
            }
            let Some(ref blob) = decoded else {
                // Missing or torn blob: rebuild everything, never risk
                // silent staleness.
                plans.push((
                    ChildHealth::Faulted,
                    SegmentMap::all_clean(self.segment_count()),
                    true,
                ));
                continue;
            };
            // Persisted map ∪ anything accrued since construction ∪ the
            // scan's ground truth (covers writes after the checkpoint
            // that persisted the blob).
            let mut dirty = blob.children[i].dirty.clone();
            {
                let state = self.mirror_shard();
                if state.children[i].assume_all_dirty {
                    // Construction had no information; the blob and the
                    // scan below supersede the fail-safe flag.
                } else {
                    dirty.union(&state.children[i].dirty);
                }
            }
            dirty.union(&self.verify_dirty(source, i, &mut now)?);
            let health =
                if dirty.is_all_clean() { ChildHealth::Online } else { ChildHealth::Faulted };
            plans.push((health, dirty, false));
        }
        let mut state = self.mirror_shard();
        for (child, (health, dirty, assume)) in state.children.iter_mut().zip(plans) {
            child.health = health;
            child.dirty = dirty;
            child.assume_all_dirty = assume;
            if health == ChildHealth::Online {
                child.faulted_at = None;
            }
        }
        Ok(now)
    }
}
