//! NoFTL-over-mirror integration: the storage manager mounts a
//! [`MirrorDevice`] exactly like a bare device, the checkpoint carries
//! the mirror's replication blob, and a remount restores health + dirty
//! maps (refined by the verify scan) so a rebuild provably copies only
//! the segments the lost child actually missed.

use std::sync::Arc;

use flash_sim::{DeviceLossInjector, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig};
use noftl_mirror::{ChildHealth, MirrorDevice};

fn fresh_mirror() -> Arc<MirrorDevice> {
    Arc::new(
        MirrorDevice::new_fresh(2, FlashGeometry::small_test(), TimingModel::default()).unwrap(),
    )
}

/// Snapshot every child and reassemble the mirror — the simulator's
/// equivalent of power-cycling a box with two flash devices in it.
fn reboot(mirror: &MirrorDevice) -> Arc<MirrorDevice> {
    let children: Vec<Arc<NandDevice>> = mirror
        .children()
        .iter()
        .map(|c| Arc::new(NandDevice::from_snapshot(&c.snapshot(), *c.timing()).unwrap()))
        .collect();
    let injector = Arc::new(DeviceLossInjector::new(children.len()));
    Arc::new(MirrorDevice::new(children, injector).unwrap())
}

#[test]
fn checkpoint_mount_roundtrip_restores_mirror_state_and_rebuild_copies_only_dirty() {
    let mirror = fresh_mirror();
    let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
    let obj = noftl.create_object_in("t", "rgAll").unwrap();
    let mut t = SimTime::ZERO;
    for p in 0..12u64 {
        t = noftl.write(obj, p, &vec![p as u8 + 1; 4096], t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();

    // Lose child 1, keep writing: only these writes may be stale on it.
    mirror.injector().arm(1, t);
    t = SimTime(t.as_nanos() + 1_000);
    for p in 0..4u64 {
        t = noftl.write(obj, p, &vec![0xA0 + p as u8; 4096], t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();
    assert_eq!(mirror.health(1), ChildHealth::Faulted);
    let dirty_before = mirror.dirty_segments(1);
    assert!(
        dirty_before > 0 && dirty_before < mirror.segment_count(),
        "degraded writes must dirty some but not all segments (got {dirty_before})"
    );

    // Reboot and remount through the standard path.
    let mirror2 = reboot(&mirror);
    let (noftl2, report) = NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), t).unwrap();
    assert!(report.checkpoint_seq >= 2);
    t = report.completed_at;

    // The persisted blob (plus verify scan) restored exactly the stale
    // set — not "everything", which is what a torn blob would force.
    assert_eq!(mirror2.health(1), ChildHealth::Faulted);
    let dirty_restored = mirror2.dirty_segments(1);
    assert!(dirty_restored > 0 && dirty_restored < mirror2.segment_count());

    // Degraded reads already serve the freshest data.
    for p in 0..4u64 {
        assert_eq!(noftl2.read(obj, p, t).unwrap().0, vec![0xA0 + p as u8; 4096]);
    }
    for p in 4..12u64 {
        assert_eq!(noftl2.read(obj, p, t).unwrap().0, vec![p as u8 + 1; 4096]);
    }

    // Rebuild copies exactly the restored dirty segments.
    let programs_before = mirror2.children()[1].stats().page_programs;
    mirror2.start_rebuild(1, t).unwrap();
    let report = mirror2.rebuild(1, 4, t).unwrap();
    assert!(report.child_online);
    assert_eq!(report.segments_copied, dirty_restored);
    assert_eq!(report.segments_requeued, 0);
    assert!(mirror2.fully_online());
    assert_eq!(mirror2.dirty_segments(1), 0);
    let copied_programs = mirror2.children()[1].stats().page_programs - programs_before;
    assert_eq!(copied_programs, report.pages_copied);
    t = report.completed_at;

    t = noftl2.checkpoint(t).unwrap();
    let mirror3 = reboot(&mirror2);
    let (noftl3, report) = NoFtl::mount(mirror3.clone(), NoFtlConfig::default(), t).unwrap();
    // …which the verify scan confirms: a clean roundtrip mounts fully
    // online with nothing left to copy.
    assert!(mirror3.fully_online(), "verify scan found divergence after a completed rebuild");
    assert_eq!(mirror3.dirty_segments(1), 0);
    for p in 0..4u64 {
        assert_eq!(noftl3.read(obj, p, report.completed_at).unwrap().0, vec![0xA0 + p as u8; 4096]);
    }
}

#[test]
fn mount_with_child_still_missing_serves_degraded_and_rebuilds_later() {
    let mirror = fresh_mirror();
    let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
    let obj = noftl.create_object_in("t", "rgAll").unwrap();
    let mut t = SimTime::ZERO;
    for p in 0..8u64 {
        t = noftl.write(obj, p, &vec![p as u8 + 10; 4096], t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();

    // Reboot with the child still absent: restore cannot verify it and
    // must fail safe ("assume everything stale"), yet the mount serves.
    let children: Vec<Arc<NandDevice>> = mirror
        .children()
        .iter()
        .map(|c| Arc::new(NandDevice::from_snapshot(&c.snapshot(), *c.timing()).unwrap()))
        .collect();
    let injector = Arc::new(DeviceLossInjector::new(children.len()));
    injector.arm(1, SimTime::ZERO);
    let mirror2 = Arc::new(MirrorDevice::new(children, injector).unwrap());
    let (noftl2, report) = NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), t).unwrap();
    t = report.completed_at;
    assert_eq!(mirror2.health(1), ChildHealth::Faulted);
    assert_eq!(mirror2.dirty_segments(1), mirror2.segment_count());
    for p in 0..8u64 {
        assert_eq!(noftl2.read(obj, p, t).unwrap().0, vec![p as u8 + 10; 4096]);
    }

    // The device reattaches: clear the loss, rebuild, fully online.
    mirror2.injector().clear(1);
    mirror2.start_rebuild(1, t).unwrap();
    let report = mirror2.rebuild(1, 8, t).unwrap();
    assert!(report.child_online);
    assert!(mirror2.fully_online());
}

#[test]
fn power_cut_during_mount_recovers_on_retry() {
    let mirror = fresh_mirror();
    let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
    let obj = noftl.create_object_in("t", "rgAll").unwrap();
    let mut t = SimTime::ZERO;
    for p in 0..10u64 {
        t = noftl.write(obj, p, &vec![p as u8 + 3; 4096], t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();

    let mirror2 = reboot(&mirror);
    // Cut power again while the mount itself is scanning the device.
    for child in mirror2.children() {
        child.arm_power_cut(SimTime(t.as_nanos() + 50_000));
    }
    let err = NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), t).unwrap_err();
    assert!(format!("{err}").contains("power"), "mount failed for the wrong reason: {err}");

    // Power returns: the same devices mount cleanly with all data.
    for child in mirror2.children() {
        child.clear_power_cut();
    }
    let (noftl2, report) = NoFtl::mount(mirror2, NoFtlConfig::default(), t).unwrap();
    for p in 0..10u64 {
        assert_eq!(noftl2.read(obj, p, report.completed_at).unwrap().0, vec![p as u8 + 3; 4096]);
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Checkpoint → crash → mount round-trips the mirror config and
        /// segment map for arbitrary degraded write patterns: the
        /// restored dirty set covers exactly the blocks the lost child
        /// missed and every acknowledged write survives.
        #[test]
        fn roundtrip_restores_exact_staleness(
            seed in any::<u64>(),
            degraded_writes in 1u64..10,
        ) {
            let mirror = fresh_mirror();
            let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
            let obj = noftl.create_object_in("t", "rgAll").unwrap();
            let mut t = SimTime::ZERO;
            let mut expected = std::collections::HashMap::new();
            let mut x = seed | 1;
            let mut rand = move || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x >> 33
            };
            for i in 0..8u64 {
                t = noftl.write(obj, i, &vec![(rand() % 251) as u8; 4096], t).unwrap();
                expected.insert(i, noftl.read(obj, i, t).unwrap().0);
            }
            t = noftl.checkpoint(t).unwrap();
            mirror.injector().arm(1, t);
            t = SimTime(t.as_nanos() + 1_000);
            for _ in 0..degraded_writes {
                let page = rand() % 8;
                let val = vec![(rand() % 251) as u8; 4096];
                t = noftl.write(obj, page, &val, t).unwrap();
                expected.insert(page, val);
            }
            // Half the cases persist the degraded state in a second
            // checkpoint (blob path), half crash with only the clean
            // pre-loss blob (verify-scan path).
            if seed.is_multiple_of(2) {
                t = noftl.checkpoint(t).unwrap();
            }
            let mirror2 = reboot(&mirror);
            let (noftl2, report) =
                NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), t).unwrap();
            t = report.completed_at;
            prop_assert_eq!(mirror2.health(0), ChildHealth::Online);
            prop_assert_eq!(mirror2.health(1), ChildHealth::Faulted);
            let dirty = mirror2.dirty_segments(1);
            prop_assert!(dirty > 0);
            prop_assert!(dirty < mirror2.segment_count());
            for (page, val) in &expected {
                prop_assert_eq!(&noftl2.read(obj, *page, t).unwrap().0, val);
            }
            mirror2.start_rebuild(1, t).unwrap();
            let report = mirror2.rebuild(1, 4, t).unwrap();
            prop_assert!(report.child_online);
            prop_assert_eq!(report.segments_copied, dirty);
            prop_assert!(mirror2.fully_online());
        }
    }
}
