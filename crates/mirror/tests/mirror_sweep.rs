//! Acceptance sweep: 25+ randomized cycles combining device loss,
//! power cuts mid-rebuild and crashes during mount, verifying that no
//! acknowledged write is ever lost and that rebuilds only ever copy
//! segments the lost child actually missed.
//!
//! Each cycle:
//!
//! 1. writes a random workload through NoFTL over a 2-way mirror and
//!    checkpoints it;
//! 2. loses a random child and keeps writing (degraded mode), possibly
//!    checkpointing the degraded state;
//! 3. sometimes reattaches the child and rebuilds — and sometimes cuts
//!    power *mid-rebuild*, leaving torn copies for recovery to discard;
//! 4. reboots both children from snapshots, sometimes cutting power
//!    again *while the mount is scanning* before the retry succeeds,
//!    and sometimes booting with the lost child still absent;
//! 5. remounts, verifies every acknowledged write, rebuilds to fully
//!    online and verifies again from the rebuilt mirror.

use std::collections::HashMap;
use std::sync::Arc;

use flash_sim::{DeviceLossInjector, FlashError, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig};
use noftl_mirror::{ChildHealth, MirrorDevice};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CYCLES: u64 = 25;
const PAGES: u64 = 24;

fn reboot(mirror: &MirrorDevice, lost: Option<usize>) -> Arc<MirrorDevice> {
    let children: Vec<Arc<NandDevice>> = mirror
        .children()
        .iter()
        .map(|c| Arc::new(NandDevice::from_snapshot(&c.snapshot(), *c.timing()).unwrap()))
        .collect();
    let injector = Arc::new(DeviceLossInjector::new(children.len()));
    if let Some(child) = lost {
        injector.arm(child, SimTime::ZERO);
    }
    Arc::new(MirrorDevice::new(children, injector).unwrap())
}

#[test]
fn randomized_loss_and_crash_sweep_loses_no_acknowledged_write() {
    let mut torn_mounts = 0u64;
    let mut interrupted_rebuilds = 0u64;
    let mut absent_boots = 0u64;
    let mut total_copied = 0u64;
    for cycle in 0..CYCLES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + cycle);
        let mirror = Arc::new(
            MirrorDevice::new_fresh(2, FlashGeometry::small_test(), TimingModel::default())
                .unwrap(),
        );
        let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
        let obj = noftl.create_object_in("t", "rgAll").unwrap();
        let mut t = SimTime(1_000);
        let mut acked: HashMap<u64, Vec<u8>> = HashMap::new();
        let write = |noftl: &NoFtl,
                     t: &mut SimTime,
                     rng: &mut StdRng,
                     acked: &mut HashMap<u64, Vec<u8>>| {
            let page = rng.random_range(0..PAGES);
            let val = vec![rng.random_range(1..=255u32) as u8; 4096];
            *t = noftl.write(obj, page, &val, *t).unwrap();
            acked.insert(page, val);
        };

        // Phase 1: healthy writes + checkpoint (always, so a mount target
        // exists).
        for _ in 0..rng.random_range(10..30u32) {
            write(&noftl, &mut t, &mut rng, &mut acked);
        }
        t = noftl.checkpoint(t).unwrap();

        // Phase 2: lose a child, keep writing degraded.
        let lost_child = rng.random_range(0..2usize);
        mirror.injector().arm(lost_child, t);
        t = SimTime(t.as_nanos() + 1);
        for _ in 0..rng.random_range(5..20u32) {
            write(&noftl, &mut t, &mut rng, &mut acked);
        }
        assert_eq!(mirror.health(lost_child), ChildHealth::Faulted, "cycle {cycle}");
        if rng.random_range(0..100) < 50 {
            // Persist the degraded state (blob carries the dirty map).
            t = noftl.checkpoint(t).unwrap();
        }

        // Phase 3: sometimes reattach and rebuild, sometimes with a power
        // cut landing mid-rebuild.
        let mut cut_armed = false;
        if rng.random_range(0..100) < 60 {
            mirror.injector().clear(lost_child);
            mirror.start_rebuild(lost_child, t).unwrap();
            if rng.random_range(0..100) < 50 {
                // Cut power a little into the copy stream.
                let cut_at = SimTime(t.as_nanos() + rng.random_range(10_000..200_000u64));
                for child in mirror.children() {
                    child.arm_power_cut(cut_at);
                }
                cut_armed = true;
                let mut clock = t;
                let outcome = loop {
                    match mirror.rebuild_step(lost_child, 4, clock) {
                        Ok(None) => break Ok(()),
                        Ok(Some(copy)) => clock = clock.max(copy.completed_at),
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok(()) => {} // the cut landed after the rebuild drained
                    Err(e) => {
                        assert!(
                            e.is_power_loss(),
                            "cycle {cycle}: rebuild died of the wrong cause: {e}"
                        );
                        interrupted_rebuilds += 1;
                    }
                }
            } else {
                let report = mirror.rebuild(lost_child, 4, t).unwrap();
                assert!(report.child_online, "cycle {cycle}");
                t = t.max(report.completed_at);
                // A few more healthy writes after the rebuild.
                for _ in 0..rng.random_range(1..6u32) {
                    write(&noftl, &mut t, &mut rng, &mut acked);
                }
            }
        }
        if !cut_armed {
            // Crash now (all acknowledged writes have completed by `t`).
            for child in mirror.children() {
                child.arm_power_cut(t);
            }
        }
        // The mirror is genuinely dead from here on.
        let err = noftl.write(obj, 0, &[0u8; 4096], SimTime(t.as_nanos() + 1)).unwrap_err();
        let ferr: FlashError = match err {
            noftl_core::NoFtlError::Flash(f) => f,
            other => panic!("cycle {cycle}: expected a flash error, got {other}"),
        };
        assert!(
            ferr.is_power_loss() || matches!(ferr, FlashError::NoHealthyChild { .. }),
            "cycle {cycle}: post-crash write failed for the wrong reason: {ferr}"
        );

        // Phase 4: reboot. Sometimes the lost child is still absent;
        // sometimes power dies again during the mount itself.
        let still_absent =
            mirror.health(lost_child) == ChildHealth::Faulted && rng.random_range(0..100) < 30;
        let mirror2 = reboot(&mirror, still_absent.then_some(lost_child));
        if still_absent {
            absent_boots += 1;
        }
        let mut mount_at = SimTime(t.as_nanos() + 10_000);
        if rng.random_range(0..100) < 40 {
            for child in mirror2.children() {
                child.arm_power_cut(SimTime(
                    mount_at.as_nanos() + rng.random_range(1_000..100_000u64),
                ));
            }
            match NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), mount_at) {
                Err(e) => {
                    torn_mounts += 1;
                    assert!(
                        format!("{e}").contains("power"),
                        "cycle {cycle}: mount died of the wrong cause: {e}"
                    );
                }
                Ok(_) => {
                    // The cut landed after the mount finished scanning —
                    // legal; power-cycle once more for the real mount.
                }
            }
            for child in mirror2.children() {
                child.clear_power_cut();
            }
            mount_at = SimTime(mount_at.as_nanos() + 1_000_000);
        }
        let (noftl2, report) =
            NoFtl::mount(mirror2.clone(), NoFtlConfig::default(), mount_at).unwrap();
        let mut t2 = report.completed_at;

        // Zero acknowledged-write loss, served possibly degraded.
        for (page, val) in &acked {
            let (data, done) = noftl2.read(obj, *page, t2).unwrap();
            assert_eq!(&data, val, "cycle {cycle}: page {page} lost after remount");
            t2 = t2.max(done);
        }

        // Phase 5: bring the mirror fully online and verify once more.
        if !mirror2.fully_online() {
            let stale: Vec<usize> =
                (0..2).filter(|&c| mirror2.health(c) != ChildHealth::Online).collect();
            for child in stale {
                mirror2.injector().clear(child);
                let dirty = mirror2.dirty_segments(child);
                mirror2.start_rebuild(child, t2).unwrap();
                let report = mirror2.rebuild(child, 4, t2).unwrap();
                assert!(report.child_online, "cycle {cycle}");
                // The rebuild copies exactly what the restored map said
                // was stale — requeues are impossible without foreground
                // traffic.
                assert_eq!(
                    report.segments_copied, dirty,
                    "cycle {cycle}: rebuild copied a different segment count than the map held"
                );
                assert_eq!(report.segments_requeued, 0, "cycle {cycle}");
                total_copied += report.segments_copied;
                t2 = t2.max(report.completed_at);
            }
        }
        assert!(mirror2.fully_online(), "cycle {cycle}");
        for (page, val) in &acked {
            let (data, done) = noftl2.read(obj, *page, t2).unwrap();
            assert_eq!(&data, val, "cycle {cycle}: page {page} lost after rebuild");
            t2 = t2.max(done);
        }
    }
    // The sweep must actually have exercised its failure modes.
    assert!(torn_mounts > 0, "no cycle crashed during mount");
    assert!(interrupted_rebuilds > 0, "no cycle cut power mid-rebuild");
    assert!(absent_boots > 0, "no cycle booted with the child still absent");
    println!(
        "{CYCLES} cycles: {torn_mounts} mounts crashed, {interrupted_rebuilds} rebuilds \
         interrupted, {absent_boots} boots with an absent child, {total_copied} segments copied"
    );
}
