//! The write-ahead log: ARIES-lite redo logging.
//!
//! Every record carries a monotonically increasing **LSN** and a CRC, and
//! the log stream is chunked into self-validating pages, so after a crash
//! the intact prefix of the log can be recovered and the torn tail
//! discarded.  Two kinds of payload flow through the log:
//!
//! * **Note** records — the small logical operation records the space-
//!   management experiments measure (one per DML statement, as before);
//! * **PageImage** records — full after-images of the pages a transaction
//!   dirtied, appended at commit time.  The redo pass of
//!   [`crate::Database::recover`] replays the images of *committed*
//!   transactions in LSN order; because an after-image overwrite is
//!   idempotent, redo is safe to repeat.
//!
//! The log is just another storage object, so under NoFTL it lives in
//! whatever region the placement configuration assigns (the paper's
//! Figure 2 puts it in a small dedicated region).  A segment-size guard
//! bounds the log: once the current segment exceeds the configured page
//! budget, the database takes a checkpoint and calls [`Wal::truncate`],
//! which frees the old segment's pages and restarts the stream at a fresh
//! page boundary.

use std::sync::OnceLock;

use parking_lot::Mutex;

use flash_sim::{crc32, SimTime};
use noftl_obs::{Histogram, Unit};

use crate::storage::{ObjectId, StorageBackend};
use crate::Result;
use crate::PAGE_SIZE;

/// Log sequence number: position of a record in the logical log stream.
pub type Lsn = u64;

/// Magic number of a WAL page ("WALP").
const PAGE_MAGIC: u32 = 0x5741_4C50;

/// Page header: magic:4 | page_no:8 | used:4 | crc:4 | reserved:4.
const PAGE_HEADER: usize = 24;

/// Log payload bytes per page.
const PAGE_CAP: usize = PAGE_SIZE - PAGE_HEADER;

/// A typed log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A small logical operation record (kept for I/O-behaviour parity
    /// with the paper experiments; not replayed).
    Note {
        /// Transaction id.
        txn: u64,
        /// Free-form description, e.g. `INSERT customer 3:12`.
        text: String,
    },
    /// Full after-image of one page dirtied by a transaction.
    PageImage {
        /// Transaction id.
        txn: u64,
        /// Storage object the page belongs to.
        obj: ObjectId,
        /// Logical page number.
        page: u64,
        /// The page contents after the transaction's writes.
        image: Vec<u8>,
    },
    /// The transaction committed; its images must be redone.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction rolled back; its records are ignored by redo.
    Rollback {
        /// Transaction id.
        txn: u64,
    },
    /// A checkpoint completed; everything before this point is durable in
    /// the data pages themselves.
    Checkpoint,
}

impl WalRecord {
    /// The record's compact textual form, used by the *volatile* log mode
    /// (no recovery) to reproduce the original engine's log byte stream,
    /// whose I/O footprint the paper's experiments measure.
    fn legacy_text(&self) -> String {
        match self {
            WalRecord::Note { text, .. } => text.clone(),
            WalRecord::PageImage { obj, page, .. } => format!("IMG {obj} {page}"),
            WalRecord::Commit { txn } => format!("COMMIT {txn}"),
            WalRecord::Rollback { txn } => format!("ROLLBACK {txn}"),
            WalRecord::Checkpoint => "CHECKPOINT".to_string(),
        }
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Note { txn, text } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            WalRecord::PageImage { txn, obj, page, image } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&obj.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&(image.len() as u32).to_le_bytes());
                out.extend_from_slice(image);
            }
            WalRecord::Commit { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Rollback { txn } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Checkpoint => out.push(5),
        }
        out
    }

    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = body.split_first()?;
        let u64_at = |b: &[u8], o: usize| -> Option<u64> {
            Some(u64::from_le_bytes(b.get(o..o + 8)?.try_into().ok()?))
        };
        let u32_at = |b: &[u8], o: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(o..o + 4)?.try_into().ok()?))
        };
        match tag {
            1 => {
                let txn = u64_at(rest, 0)?;
                let len = u32_at(rest, 8)? as usize;
                let text = String::from_utf8(rest.get(12..12 + len)?.to_vec()).ok()?;
                Some(WalRecord::Note { txn, text })
            }
            2 => {
                let txn = u64_at(rest, 0)?;
                let obj = u32_at(rest, 8)?;
                let page = u64_at(rest, 12)?;
                let len = u32_at(rest, 20)? as usize;
                let image = rest.get(24..24 + len)?.to_vec();
                Some(WalRecord::PageImage { txn, obj, page, image })
            }
            3 => Some(WalRecord::Commit { txn: u64_at(rest, 0)? }),
            4 => Some(WalRecord::Rollback { txn: u64_at(rest, 0)? }),
            5 => Some(WalRecord::Checkpoint),
            _ => None,
        }
    }
}

struct WalInner {
    /// LSN handed to the next appended record.
    next_lsn: Lsn,
    /// Page number the partial payload below will be written to.
    cur_page: u64,
    /// Payload of the current (partial) page; always shorter than
    /// `PAGE_CAP`.
    cur_payload: Vec<u8>,
    /// Completed pages not yet forced to storage.
    pending: Vec<(u64, Vec<u8>)>,
    /// First page of the current segment (everything before it has been
    /// freed by truncation).
    segment_start: u64,
    records: u64,
    forces: u64,
    appended_bytes: u64,
    truncations: u64,
    /// Pages freed by truncation over the log's lifetime (feeds the
    /// cumulative `pages` statistic now that page numbers are reused).
    pages_retired: u64,
}

/// Statistics of the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Log records appended.
    pub records: u64,
    /// Log forces (group-commit boundaries).
    pub forces: u64,
    /// Bytes appended (record payloads, before framing).
    pub appended_bytes: u64,
    /// Current log length in pages (including truncated segments).
    pub pages: u64,
    /// Pages in the current segment (reset by truncation).
    pub segment_pages: u64,
    /// Completed truncations.
    pub truncations: u64,
    /// LSN the next record will receive.
    pub next_lsn: Lsn,
}

/// An append-only, force-at-commit, CRC-framed redo log.
pub struct Wal {
    obj: ObjectId,
    /// Whether completed (spilled) pages are written out by `force`.
    /// `true` is required for recovery; `false` reproduces the original
    /// engine's I/O behaviour — exactly one page write per force, with
    /// the current page as a rolling commit marker — which the paper's
    /// space-management experiments measure.
    durable_spill: bool,
    inner: Mutex<WalInner>,
    /// `dbms.wal.force_ns` handle, bound lazily on the first force (the
    /// registry lives behind the backend, which `new` does not see).
    force_hist: OnceLock<Histogram>,
}

impl Wal {
    /// Create a log writing to storage object `obj`.
    pub fn new(obj: ObjectId) -> Self {
        Wal {
            obj,
            durable_spill: true,
            force_hist: OnceLock::new(),
            inner: Mutex::new(WalInner {
                next_lsn: 1,
                cur_page: 0,
                cur_payload: Vec::with_capacity(PAGE_CAP),
                pending: Vec::new(),
                segment_start: 0,
                records: 0,
                forces: 0,
                appended_bytes: 0,
                truncations: 0,
                pages_retired: 0,
            }),
        }
    }

    /// Configure whether spilled pages are made durable (see the field
    /// docs; disable only when the log is pure I/O ballast).
    pub fn with_durable_spill(mut self, durable: bool) -> Self {
        self.durable_spill = durable;
        self
    }

    /// The storage object backing the log.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// Append a typed record (buffered; not durable until [`Wal::force`]).
    /// Returns the record's LSN.
    pub fn append(&self, record: &WalRecord) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.records += 1;
        let framed = if self.durable_spill {
            // Frame: len:4 | crc:4 | lsn:8 | body.  `len` counts lsn + body.
            let body = record.encode_body();
            inner.appended_bytes += body.len() as u64;
            let mut framed = Vec::with_capacity(16 + body.len());
            framed.extend_from_slice(&((8 + body.len()) as u32).to_le_bytes());
            let mut checked = Vec::with_capacity(8 + body.len());
            checked.extend_from_slice(&lsn.to_le_bytes());
            checked.extend_from_slice(&body);
            framed.extend_from_slice(&crc32(&checked).to_le_bytes());
            framed.extend_from_slice(&checked);
            framed
        } else {
            // Volatile log: the original engine's compact length-prefixed
            // text records (pure I/O ballast; never scanned back).
            let text = record.legacy_text();
            inner.appended_bytes += text.len() as u64;
            let mut framed = Vec::with_capacity(4 + text.len());
            framed.extend_from_slice(&(text.len() as u32).to_le_bytes());
            framed.extend_from_slice(text.as_bytes());
            framed
        };
        // Stream the frame into pages, spilling as they fill up.
        let mut rest = framed.as_slice();
        while !rest.is_empty() {
            let room = PAGE_CAP - inner.cur_payload.len();
            let take = room.min(rest.len());
            inner.cur_payload.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if inner.cur_payload.len() == PAGE_CAP {
                let page_no = inner.cur_page;
                let full = std::mem::replace(&mut inner.cur_payload, Vec::with_capacity(PAGE_CAP));
                inner.pending.push((page_no, full));
                inner.cur_page += 1;
            }
        }
        lsn
    }

    /// Convenience wrapper appending a [`WalRecord::Note`].
    pub fn append_note(&self, txn: u64, text: impl Into<String>) -> Lsn {
        self.append(&WalRecord::Note { txn, text: text.into() })
    }

    fn seal(page_no: u64, payload: &[u8]) -> Vec<u8> {
        debug_assert!(payload.len() <= PAGE_CAP);
        let mut page = vec![0u8; PAGE_SIZE];
        page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        page[4..12].copy_from_slice(&page_no.to_le_bytes());
        page[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        page[16..20].copy_from_slice(&crc32(payload).to_le_bytes());
        page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
        page
    }

    fn unseal(page_no: u64, page: &[u8]) -> Option<Vec<u8>> {
        if page.len() < PAGE_HEADER {
            return None;
        }
        if u32::from_le_bytes(page[0..4].try_into().ok()?) != PAGE_MAGIC {
            return None;
        }
        if u64::from_le_bytes(page[4..12].try_into().ok()?) != page_no {
            return None;
        }
        let used = u32::from_le_bytes(page[12..16].try_into().ok()?) as usize;
        if PAGE_HEADER + used > page.len() {
            return None;
        }
        let payload = &page[PAGE_HEADER..PAGE_HEADER + used];
        if crc32(payload) != u32::from_le_bytes(page[16..20].try_into().ok()?) {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Force every unforced log page to storage (group-commit boundary).
    /// The pages are submitted as one queued batch issued at `now`, so a
    /// multi-page force overlaps across the log region's dies; the
    /// returned time — the part of a commit the transaction must wait
    /// for — is the completion of the slowest page.
    pub fn force(&self, backend: &dyn StorageBackend, now: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        inner.forces += 1;
        let pending = std::mem::take(&mut inner.pending);
        let mut batch: Vec<(crate::storage::ObjectId, u64, Vec<u8>)> =
            Vec::with_capacity(pending.len() + 1);
        if self.durable_spill {
            for (page_no, payload) in &pending {
                batch.push((self.obj, *page_no, Self::seal(*page_no, payload)));
            }
        }
        batch.push((self.obj, inner.cur_page, Self::seal(inner.cur_page, &inner.cur_payload)));
        let done = backend.write_batch(&batch, now)?;
        if let Some(registry) = backend.metrics() {
            let hist = self
                .force_hist
                .get_or_init(|| registry.histogram("dbms.wal.force_ns", Unit::SimNanos));
            hist.record(done.since(now).as_nanos());
            // Track 101: WAL spans (see the core obs module's track map).
            registry.tracer().span(
                "dbms.wal",
                "force",
                101,
                now.as_nanos(),
                done.as_nanos(),
                &[("pages", batch.len() as u64)],
            );
        }
        Ok(done)
    }

    /// Pages in the current segment.
    pub fn segment_pages(&self) -> u64 {
        let inner = self.inner.lock();
        inner.cur_page - inner.segment_start + 1
    }

    /// True once the current segment exceeds `limit` pages — the signal
    /// for the database to checkpoint and truncate.
    pub fn needs_truncation(&self, limit: u64) -> bool {
        self.segment_pages() > limit.max(1)
    }

    /// Drop the current segment after a checkpoint made it redundant: its
    /// pages are freed and the stream restarts at page 0, reusing the
    /// logical page space (out-of-place updates make the rewrite safe and
    /// the freed translations keep the log object's extent — and the
    /// storage manager's per-page map — bounded by the segment budget).
    /// The caller must have forced the log (and made all logged state
    /// durable elsewhere) first.  Returns the number of pages freed.
    pub fn truncate(&self, backend: &dyn StorageBackend) -> Result<u64> {
        let mut inner = self.inner.lock();
        // Anything still buffered belongs to the pre-checkpoint world the
        // caller just made durable; it is dropped with the segment.
        inner.pending.clear();
        inner.cur_payload.clear();
        let mut freed = 0u64;
        for page_no in inner.segment_start..=inner.cur_page {
            backend.free_page(self.obj, page_no)?;
            freed += 1;
        }
        inner.pages_retired += inner.cur_page - inner.segment_start + 1;
        inner.segment_start = 0;
        inner.cur_page = 0;
        inner.truncations += 1;
        if let Some(registry) = backend.metrics() {
            registry.counter("dbms.wal.truncations").inc();
        }
        Ok(freed)
    }

    /// Current statistics.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock();
        WalStats {
            records: inner.records,
            forces: inner.forces,
            appended_bytes: inner.appended_bytes,
            pages: inner.pages_retired + inner.cur_page + 1,
            segment_pages: inner.cur_page - inner.segment_start + 1,
            truncations: inner.truncations,
            next_lsn: inner.next_lsn,
        }
    }

    /// Scan a log object on storage and return the intact record prefix in
    /// LSN order.  Unreadable or corrupt pages end the scan (the torn
    /// tail); freed pages before the surviving segment are skipped.
    pub fn scan(
        backend: &dyn StorageBackend,
        obj: ObjectId,
        at: SimTime,
    ) -> Result<(Vec<(Lsn, WalRecord)>, SimTime)> {
        let extent = backend.object_extent(obj)?;
        let mut now = at;
        // Find the surviving segment: the first readable, valid page.
        let mut stream = Vec::new();
        let mut in_run = false;
        for page_no in 0..extent {
            let payload = match backend.read_page(obj, page_no, at) {
                Ok((bytes, t)) => {
                    now = now.max(t);
                    Self::unseal(page_no, &bytes)
                }
                Err(_) => None,
            };
            match payload {
                Some(p) => {
                    in_run = true;
                    stream.extend_from_slice(&p);
                }
                None if in_run => break, // torn tail
                None => continue,        // truncated prefix
            }
        }
        // Parse records until the stream runs dry or a frame fails its CRC.
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= stream.len() {
            let len =
                u32::from_le_bytes(stream[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len < 8 || pos + 8 + len > stream.len() {
                break;
            }
            let crc = u32::from_le_bytes(stream[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let checked = &stream[pos + 8..pos + 8 + len];
            if crc32(checked) != crc {
                break;
            }
            let lsn = u64::from_le_bytes(checked[..8].try_into().expect("8 bytes"));
            let Some(record) = WalRecord::decode_body(&checked[8..]) else {
                break;
            };
            records.push((lsn, record));
            pos += 8 + len;
        }
        Ok((records, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::NoFtlBackend;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};
    use std::sync::Arc;

    fn backend() -> Arc<NoFtlBackend> {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        Arc::new(
            NoFtlBackend::new(noftl, &PlacementConfig::traditional(8, ["log".to_string()]))
                .unwrap(),
        )
    }

    #[test]
    fn append_and_force() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        let l1 = wal.append_note(1, "begin;update;commit");
        let l2 = wal.append(&WalRecord::Commit { txn: 1 });
        assert!(l2 > l1, "LSNs are monotonic");
        let done = wal.force(&*backend, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO, "a force is a real flash write");
        let s = wal.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.forces, 1);
        assert_eq!(s.pages, 1);
        assert!(s.appended_bytes > 0);
        assert_eq!(s.next_lsn, 3);
    }

    #[test]
    fn log_spills_to_new_pages_and_scan_recovers_records() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        let mut appended = Vec::new();
        for i in 0..50u64 {
            let rec = WalRecord::Note { txn: i, text: "x".repeat(400) };
            let lsn = wal.append(&rec);
            appended.push((lsn, rec));
        }
        assert!(wal.stats().pages >= 4, "pages = {}", wal.stats().pages);
        wal.force(&*backend, SimTime::ZERO).unwrap();
        let (scanned, _) = Wal::scan(&*backend, obj, SimTime::ZERO).unwrap();
        assert_eq!(scanned, appended);
    }

    #[test]
    fn scan_recovers_page_images_spanning_pages() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        let img = WalRecord::PageImage {
            txn: 9,
            obj: 3,
            page: 17,
            image: (0..PAGE_SIZE).map(|i| i as u8).collect(),
        };
        wal.append(&img);
        wal.append(&WalRecord::Commit { txn: 9 });
        wal.force(&*backend, SimTime::ZERO).unwrap();
        let (scanned, _) = Wal::scan(&*backend, obj, SimTime::ZERO).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].1, img);
        assert_eq!(scanned[1].1, WalRecord::Commit { txn: 9 });
    }

    #[test]
    fn unforced_records_are_not_recovered() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        wal.append_note(1, "durable");
        wal.force(&*backend, SimTime::ZERO).unwrap();
        wal.append_note(2, "volatile");
        let (scanned, _) = Wal::scan(&*backend, obj, SimTime::ZERO).unwrap();
        assert_eq!(scanned.len(), 1);
        assert!(matches!(&scanned[0].1, WalRecord::Note { txn: 1, .. }));
    }

    #[test]
    fn segment_limit_triggers_truncation_and_scan_skips_freed_prefix() {
        // Satellite: `Wal::append` gains a size/rotation guard with
        // checkpoint-triggered truncation.
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        for i in 0..40u64 {
            wal.append(&WalRecord::Note { txn: i, text: "y".repeat(400) });
        }
        wal.force(&*backend, SimTime::ZERO).unwrap();
        assert!(wal.needs_truncation(2));
        let before = wal.stats();
        let freed = wal.truncate(&*backend).unwrap();
        assert!(freed >= before.segment_pages - 1, "old segment freed");
        let after = wal.stats();
        assert_eq!(after.segment_pages, 1);
        assert_eq!(after.truncations, 1);
        assert!(!wal.needs_truncation(2));
        // Post-truncation records land after the freed prefix and scan
        // correctly.
        wal.append(&WalRecord::Commit { txn: 99 });
        wal.force(&*backend, SimTime::ZERO).unwrap();
        let (scanned, _) = Wal::scan(&*backend, obj, SimTime::ZERO).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, WalRecord::Commit { txn: 99 });
    }

    #[test]
    fn record_codec_rejects_garbage() {
        assert!(WalRecord::decode_body(&[]).is_none());
        assert!(WalRecord::decode_body(&[9, 0, 0]).is_none());
        assert!(WalRecord::decode_body(&[2, 1]).is_none());
        let body = WalRecord::Checkpoint.encode_body();
        assert_eq!(WalRecord::decode_body(&body), Some(WalRecord::Checkpoint));
    }
}
