//! A minimal write-ahead log.
//!
//! The engine uses physiological redo-only logging in spirit, but for the
//! space-management experiments only the *I/O behaviour* of the log
//! matters: every transaction appends a small record and forces the
//! current log page at commit.  The log is just another storage object, so
//! under NoFTL it can be placed in its own region (the paper's Figure 2
//! puts "DBMS-metadata" and append-only objects in a small dedicated
//! region).

use parking_lot::Mutex;

use flash_sim::SimTime;

use crate::storage::{ObjectId, StorageBackend};
use crate::Result;
use crate::PAGE_SIZE;

struct WalInner {
    page_no: u64,
    buf: Vec<u8>,
    offset: usize,
    records: u64,
    forces: u64,
    appended_bytes: u64,
}

/// Statistics of the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Log records appended.
    pub records: u64,
    /// Log pages forced to storage.
    pub forces: u64,
    /// Bytes appended (before padding).
    pub appended_bytes: u64,
    /// Current log length in pages.
    pub pages: u64,
}

/// An append-only, force-at-commit log.
pub struct Wal {
    obj: ObjectId,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Create a log writing to storage object `obj`.
    pub fn new(obj: ObjectId) -> Self {
        Wal {
            obj,
            inner: Mutex::new(WalInner {
                page_no: 0,
                buf: vec![0u8; PAGE_SIZE],
                offset: 8, // leave room for a page header (record count)
                records: 0,
                forces: 0,
                appended_bytes: 0,
            }),
        }
    }

    /// The storage object backing the log.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// Append a log record (buffered; not yet durable).
    pub fn append(&self, payload: &[u8]) {
        let mut inner = self.inner.lock();
        inner.records += 1;
        inner.appended_bytes += payload.len() as u64;
        // 4-byte length prefix + payload; spill to a new page when full.
        let needed = 4 + payload.len().min(PAGE_SIZE - 12);
        if inner.offset + needed > PAGE_SIZE {
            inner.page_no += 1;
            inner.offset = 8;
            inner.buf.fill(0);
        }
        let off = inner.offset;
        let take = payload.len().min(PAGE_SIZE - 12);
        inner.buf[off..off + 4].copy_from_slice(&(take as u32).to_le_bytes());
        inner.buf[off + 4..off + 4 + take].copy_from_slice(&payload[..take]);
        inner.offset += 4 + take;
    }

    /// Force the current log page to storage (group commit boundary).
    /// Returns the completion time — this is the part of a commit that the
    /// transaction must wait for.
    pub fn force(&self, backend: &dyn StorageBackend, now: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        inner.forces += 1;
        let page_no = inner.page_no;
        let buf = inner.buf.clone();
        backend.write_page(self.obj, page_no, &buf, now)
    }

    /// Current statistics.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock();
        WalStats {
            records: inner.records,
            forces: inner.forces,
            appended_bytes: inner.appended_bytes,
            pages: inner.page_no + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::NoFtlBackend;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};
    use std::sync::Arc;

    fn backend() -> Arc<NoFtlBackend> {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        Arc::new(
            NoFtlBackend::new(noftl, &PlacementConfig::traditional(4, ["log".to_string()]))
                .unwrap(),
        )
    }

    #[test]
    fn append_and_force() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        wal.append(b"begin;update;commit");
        wal.append(b"another record");
        let done = wal.force(&*backend, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO, "a force is a real flash write");
        let s = wal.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.forces, 1);
        assert_eq!(s.pages, 1);
        assert!(s.appended_bytes > 0);
    }

    #[test]
    fn log_spills_to_new_pages() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        // Each record is ~400 bytes; 4 KiB pages hold ~10.
        for _ in 0..50 {
            wal.append(&[7u8; 400]);
        }
        assert!(wal.stats().pages >= 4, "pages = {}", wal.stats().pages);
        wal.force(&*backend, SimTime::ZERO).unwrap();
    }

    #[test]
    fn oversized_records_are_truncated_not_fatal() {
        let backend = backend();
        let obj = backend.create_object("log").unwrap();
        let wal = Wal::new(obj);
        wal.append(&vec![1u8; 2 * PAGE_SIZE]);
        wal.force(&*backend, SimTime::ZERO).unwrap();
        assert_eq!(wal.stats().records, 1);
    }
}
