//! Transaction contexts.
//!
//! The engine's transactions are deliberately lightweight: each one carries
//! its own simulated clock (response time accumulates as it waits for
//! buffer misses and the commit-time log force) plus a few counters.  The
//! TPC-C driver runs one transaction at a time per logical client; device
//! contention between clients emerges from the shared die/channel
//! `busy_until` state, not from locking inside the engine.

use flash_sim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of a finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// Committed successfully.
    Committed,
    /// Rolled back (e.g. TPC-C NewOrder with an unused item number).
    RolledBack,
}

/// A running transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Txn {
    /// Transaction id.
    pub id: u64,
    /// When the transaction started.
    pub started_at: SimTime,
    /// The transaction's current simulated time (advances as it performs
    /// I/O and waits for the commit log force).
    pub now: SimTime,
    /// Logical page reads performed.
    pub reads: u64,
    /// Logical page writes performed.
    pub writes: u64,
}

impl Txn {
    /// Begin a transaction at `now`.
    pub fn begin(id: u64, now: SimTime) -> Self {
        Txn { id, started_at: now, now, reads: 0, writes: 0 }
    }

    /// Advance the transaction clock to `t` (monotonically).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Add a CPU "think/compute" cost to the transaction.
    pub fn add_cpu(&mut self, d: Duration) {
        self.now += d;
    }

    /// Response time so far.
    pub fn elapsed(&self) -> Duration {
        self.now - self.started_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut txn = Txn::begin(1, SimTime::from_us(100));
        txn.advance_to(SimTime::from_us(150));
        assert_eq!(txn.now.as_us(), 150);
        // Going backwards is ignored.
        txn.advance_to(SimTime::from_us(120));
        assert_eq!(txn.now.as_us(), 150);
        txn.add_cpu(Duration::from_us(10));
        assert_eq!(txn.now.as_us(), 160);
        assert_eq!(txn.elapsed().as_us_f64(), 60.0);
        assert_eq!(txn.id, 1);
    }

    #[test]
    fn outcomes_compare() {
        assert_ne!(TxnOutcome::Committed, TxnOutcome::RolledBack);
    }
}
