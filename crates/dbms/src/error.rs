//! Engine error type.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A table/index/object name was not found in the catalog.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// A table/index/object with this name already exists.
    AlreadyExists {
        /// The conflicting name.
        what: String,
    },
    /// A record does not match its table schema.
    SchemaMismatch {
        /// Human-readable description.
        message: String,
    },
    /// A record, key or value is too large for a page.
    TooLarge {
        /// Human-readable description.
        message: String,
    },
    /// A record id does not point at a live record.
    InvalidRid {
        /// Human-readable description.
        message: String,
    },
    /// Corrupted or unexpected on-page data.
    Corrupted {
        /// Human-readable description.
        message: String,
    },
    /// The storage backend reported an error.
    Storage {
        /// Human-readable description.
        message: String,
    },
    /// The transaction was aborted (e.g. TPC-C NewOrder with an invalid item).
    Aborted {
        /// Reason for the abort.
        reason: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NotFound { what } => write!(f, "not found: {what}"),
            DbError::AlreadyExists { what } => write!(f, "already exists: {what}"),
            DbError::SchemaMismatch { message } => write!(f, "schema mismatch: {message}"),
            DbError::TooLarge { message } => write!(f, "too large: {message}"),
            DbError::InvalidRid { message } => write!(f, "invalid record id: {message}"),
            DbError::Corrupted { message } => write!(f, "corrupted data: {message}"),
            DbError::Storage { message } => write!(f, "storage error: {message}"),
            DbError::Aborted { reason } => write!(f, "transaction aborted: {reason}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Construct a [`DbError::Storage`] from any displayable error.
    pub fn storage(e: impl fmt::Display) -> Self {
        DbError::Storage { message: e.to_string() }
    }

    /// Construct a [`DbError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        DbError::NotFound { what: what.into() }
    }
}

impl From<noftl_core::NoFtlError> for DbError {
    fn from(e: noftl_core::NoFtlError) -> Self {
        DbError::storage(e)
    }
}

impl From<ftl_sim::FtlError> for DbError {
    fn from(e: ftl_sim::FtlError) -> Self {
        DbError::storage(e)
    }
}

impl From<flash_sim::FlashError> for DbError {
    fn from(e: flash_sim::FlashError) -> Self {
        DbError::storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DbError = noftl_core::NoFtlError::UnknownObject { object: "x".into() }.into();
        assert!(matches!(e, DbError::Storage { .. }));
        assert!(e.to_string().contains("storage error"));
        assert!(DbError::not_found("table t").to_string().contains("table t"));
        let e: DbError = ftl_sim::FtlError::OutOfSpace.into();
        assert!(e.to_string().contains("device full"));
        let e: DbError = flash_sim::FlashError::oob("addr").into();
        assert!(e.to_string().contains("out of bounds"));
    }
}
