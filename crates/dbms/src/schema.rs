//! Table schemas and fixed-layout record encoding.

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::value::{Record, Value};
use crate::Result;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer (8 bytes on disk).
    Int,
    /// 64-bit float (8 bytes on disk).
    Float,
    /// String padded/truncated to `n` bytes on disk.
    Str(u16),
}

impl ColumnType {
    /// On-disk size of a value of this type.
    pub fn encoded_len(&self) -> usize {
        match self {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Str(n) => 2 + *n as usize, // u16 actual length + padded bytes
        }
    }
}

/// A table schema: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        Schema { columns: columns.into_iter().map(|(n, t)| (n.to_string(), t)).collect() }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Name and type of the column at `idx`.
    pub fn column(&self, idx: usize) -> Option<(&str, ColumnType)> {
        self.columns.get(idx).map(|(n, t)| (n.as_str(), *t))
    }

    /// The fixed on-disk size of a record of this schema.
    pub fn record_len(&self) -> usize {
        self.columns.iter().map(|(_, t)| t.encoded_len()).sum()
    }

    /// Serialise the schema *definition* (column names and types) so the
    /// catalog can be checkpointed and rebuilt during crash recovery.
    pub fn encode_def(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.columns.len() * 12);
        out.extend_from_slice(&(self.columns.len() as u16).to_le_bytes());
        for (name, ty) in &self.columns {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            match ty {
                ColumnType::Int => out.push(0),
                ColumnType::Float => out.push(1),
                ColumnType::Str(n) => {
                    out.push(2);
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode a definition produced by [`Schema::encode_def`].  Returns
    /// the schema and the number of bytes consumed; `None` on corruption.
    pub fn decode_def(buf: &[u8]) -> Option<(Schema, usize)> {
        let mut pos = 0usize;
        let count = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let mut columns = Vec::with_capacity(count);
        for _ in 0..count {
            let nlen = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?) as usize;
            pos += 2;
            let name = String::from_utf8(buf.get(pos..pos + nlen)?.to_vec()).ok()?;
            pos += nlen;
            let tag = *buf.get(pos)?;
            pos += 1;
            let ty = match tag {
                0 => ColumnType::Int,
                1 => ColumnType::Float,
                2 => {
                    let n = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?);
                    pos += 2;
                    ColumnType::Str(n)
                }
                _ => return None,
            };
            columns.push((name, ty));
        }
        Some((Schema { columns }, pos))
    }

    /// Encode a record according to the schema.
    pub fn encode(&self, record: &Record) -> Result<Vec<u8>> {
        if record.len() != self.columns.len() {
            return Err(DbError::SchemaMismatch {
                message: format!(
                    "record has {} values, schema has {} columns",
                    record.len(),
                    self.columns.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(self.record_len());
        for ((name, ty), value) in self.columns.iter().zip(record.iter()) {
            match (ty, value) {
                (ColumnType::Int, Value::Int(v)) => out.extend_from_slice(&v.to_le_bytes()),
                (ColumnType::Float, Value::Float(v)) => out.extend_from_slice(&v.to_le_bytes()),
                (ColumnType::Float, Value::Int(v)) => {
                    out.extend_from_slice(&(*v as f64).to_le_bytes())
                }
                (ColumnType::Str(n), Value::Str(s)) => {
                    let n = *n as usize;
                    let bytes = s.as_bytes();
                    let take = bytes.len().min(n);
                    out.extend_from_slice(&(take as u16).to_le_bytes());
                    out.extend_from_slice(&bytes[..take]);
                    out.resize(out.len() + (n - take), 0);
                }
                _ => {
                    return Err(DbError::SchemaMismatch {
                        message: format!("column '{name}' expects {ty:?}, got {value:?}"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Decode a record previously produced by [`Schema::encode`].
    pub fn decode(&self, buf: &[u8]) -> Result<Record> {
        if buf.len() < self.record_len() {
            return Err(DbError::Corrupted {
                message: format!(
                    "record buffer of {} bytes is shorter than schema length {}",
                    buf.len(),
                    self.record_len()
                ),
            });
        }
        let mut record = Vec::with_capacity(self.columns.len());
        let mut off = 0usize;
        for (_, ty) in &self.columns {
            match ty {
                ColumnType::Int => {
                    let v = i64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"));
                    record.push(Value::Int(v));
                    off += 8;
                }
                ColumnType::Float => {
                    let v = f64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"));
                    record.push(Value::Float(v));
                    off += 8;
                }
                ColumnType::Str(n) => {
                    let n = *n as usize;
                    let len =
                        u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes")) as usize;
                    if len > n {
                        return Err(DbError::Corrupted {
                            message: format!("string length {len} exceeds column size {n}"),
                        });
                    }
                    let s = String::from_utf8_lossy(&buf[off + 2..off + 2 + len]).into_owned();
                    record.push(Value::Str(s));
                    off += 2 + n;
                }
            }
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("balance", ColumnType::Float),
            ("name", ColumnType::Str(16)),
        ])
    }

    #[test]
    fn record_roundtrip() {
        let s = schema();
        let rec: Record = vec![Value::Int(42), Value::Float(-3.25), Value::Str("alice".into())];
        let enc = s.encode(&rec).unwrap();
        assert_eq!(enc.len(), s.record_len());
        assert_eq!(s.decode(&enc).unwrap(), rec);
    }

    #[test]
    fn fixed_record_length_is_independent_of_content() {
        let s = schema();
        let a = s.encode(&vec![Value::Int(1), Value::Float(0.0), Value::Str("".into())]).unwrap();
        let b = s
            .encode(&vec![Value::Int(2), Value::Float(1.5), Value::Str("sixteen-chars!!!".into())])
            .unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn long_strings_are_truncated_to_column_size() {
        let s = schema();
        let rec: Record = vec![Value::Int(1), Value::Float(0.0), Value::Str("x".repeat(100))];
        let enc = s.encode(&rec).unwrap();
        let dec = s.decode(&enc).unwrap();
        assert_eq!(dec[2].as_str().unwrap().len(), 16);
    }

    #[test]
    fn int_is_accepted_for_float_columns() {
        let s = schema();
        let rec: Record = vec![Value::Int(1), Value::Int(7), Value::Str("a".into())];
        let dec = s.decode(&s.encode(&rec).unwrap()).unwrap();
        assert_eq!(dec[1], Value::Float(7.0));
    }

    #[test]
    fn schema_mismatch_errors() {
        let s = schema();
        assert!(s.encode(&vec![Value::Int(1)]).is_err());
        assert!(s
            .encode(&vec![Value::Str("x".into()), Value::Float(0.0), Value::Str("y".into())])
            .is_err());
        assert!(s.decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.column_index("balance"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column(2).unwrap().0, "name");
        assert!(s.column(9).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_values(id in any::<i64>(), bal in any::<f64>(), name in "[a-zA-Z0-9 ]{0,16}") {
            prop_assume!(!bal.is_nan());
            let s = schema();
            let rec: Record = vec![Value::Int(id), Value::Float(bal), Value::Str(name.clone())];
            let dec = s.decode(&s.encode(&rec).unwrap()).unwrap();
            prop_assert_eq!(dec, rec);
        }
    }
}
