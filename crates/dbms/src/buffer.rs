//! Buffer pool with clock eviction and asynchronous write-back.
//!
//! The time model mirrors a DBMS with background flushers (paper, Figure 1):
//!
//! * a **miss** charges the flash read latency to the calling transaction;
//! * a **logical write** only dirties the frame — no flash I/O, no charge;
//! * **evictions** of dirty frames and **flusher batches** issue flash
//!   writes at the current simulated time but their completion is *not*
//!   added to the caller's clock.  The device still becomes busy, so heavy
//!   write-back and GC traffic delays subsequent reads — exactly the
//!   interference effect the paper measures.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use flash_sim::SimTime;
use noftl_obs::{Histogram, Unit};

use crate::error::DbError;
use crate::storage::{ObjectId, StorageBackend};
use crate::Result;
use crate::PAGE_SIZE;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read from storage.
    pub misses: u64,
    /// Frames evicted.
    pub evictions: u64,
    /// Dirty frames written back on eviction.
    pub dirty_writebacks: u64,
    /// Pages written back by explicit flush calls.
    pub flushed: u64,
    /// Logical page reads requested.
    pub logical_reads: u64,
    /// Logical page writes requested.
    pub logical_writes: u64,
    /// Pages pulled in ahead of demand through the windowed prefetch
    /// path (range scans priming the leaf chain).
    pub prefetched: u64,
}

impl BufferStats {
    /// Hit ratio in [0, 1]; 1.0 when no page was ever requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    key: (ObjectId, u64),
    data: Vec<u8>,
    dirty: bool,
    ref_bit: bool,
}

/// Ordered, deduplicated write set recorded while a capture is active.
struct Capture {
    order: Vec<(ObjectId, u64)>,
    seen: HashSet<(ObjectId, u64)>,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<(ObjectId, u64), usize>,
    hand: usize,
    stats: BufferStats,
    /// When capturing, the pages dirtied since the capture began (the
    /// write set the WAL logs as after-images at commit).
    capture: Option<Capture>,
}

/// Default bound on in-flight pages of a [`BufferPool::flush_all`]
/// pipeline — the storage manager's flusher default, defined once in
/// `noftl_core` (the die count of the largest preset geometry).
pub const DEFAULT_FLUSH_WINDOW: usize = noftl_core::flusher::DEFAULT_WINDOW;

/// A fixed-capacity buffer pool over a [`StorageBackend`].
pub struct BufferPool {
    backend: Arc<dyn StorageBackend>,
    capacity: usize,
    /// No-steal policy: dirty frames are never evicted, so uncommitted
    /// data cannot reach storage behind the WAL's back.  Required for the
    /// redo-only (no undo pass) recovery protocol.
    no_steal: bool,
    /// In-flight page bound of the completion-driven flush pipeline.
    flush_window: usize,
    inner: Mutex<PoolInner>,
    /// `dbms.buffer.flush_ns` handle, bound lazily on the first flush.
    flush_hist: OnceLock<Histogram>,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages.
    pub fn new(backend: Arc<dyn StorageBackend>, capacity: usize) -> Self {
        Self::with_policy(backend, capacity, false)
    }

    /// Create a pool with an explicit eviction policy.  With
    /// `no_steal = true` dirty frames are pinned until an explicit flush;
    /// the pool reports an error (asking for a checkpoint) if every frame
    /// is dirty.
    pub fn with_policy(backend: Arc<dyn StorageBackend>, capacity: usize, no_steal: bool) -> Self {
        let capacity = capacity.max(4);
        BufferPool {
            backend,
            capacity,
            no_steal,
            flush_window: DEFAULT_FLUSH_WINDOW,
            flush_hist: OnceLock::new(),
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                hand: 0,
                stats: BufferStats::default(),
                capture: None,
            }),
        }
    }

    /// Set the in-flight page bound of the flush pipeline (clamped to at
    /// least 1; 1 degenerates to strictly sequential write-back).
    pub fn with_flush_window(mut self, window: usize) -> Self {
        self.flush_window = window.max(1);
        self
    }

    /// The in-flight page bound of the flush pipeline.
    pub fn flush_window(&self) -> usize {
        self.flush_window
    }

    /// The backend underneath the pool.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Find (or make) a free frame using the clock algorithm.  Dirty
    /// victims are written back at `now` without charging the caller.
    fn find_victim(&self, inner: &mut PoolInner, now: SimTime) -> Result<usize> {
        // Fast path: an empty frame.
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        // Clock sweep.
        for _ in 0..inner.frames.len() * 2 + 1 {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            let frame = inner.frames[idx].as_mut().expect("no empty frames on this path");
            if frame.ref_bit {
                frame.ref_bit = false;
                continue;
            }
            if frame.dirty && self.no_steal {
                // Dirty frames are pinned under no-steal; keep sweeping.
                continue;
            }
            // Victim found.
            let key = frame.key;
            if frame.dirty {
                self.backend.write_page(key.0, key.1, &frame.data, now)?;
                inner.stats.dirty_writebacks += 1;
            }
            inner.stats.evictions += 1;
            inner.map.remove(&key);
            inner.frames[idx] = None;
            return Ok(idx);
        }
        Err(DbError::Storage {
            message: if self.no_steal {
                "buffer pool full of dirty pages under no-steal; a checkpoint is required".into()
            } else {
                "buffer pool could not find an evictable frame".into()
            },
        })
    }

    /// Read a page, returning a copy of its contents and the time at which
    /// the data is available.
    pub fn read_page(&self, obj: ObjectId, page: u64, now: SimTime) -> Result<(Vec<u8>, SimTime)> {
        let mut inner = self.inner.lock();
        inner.stats.logical_reads += 1;
        if let Some(&idx) = inner.map.get(&(obj, page)) {
            inner.stats.hits += 1;
            let frame = inner.frames[idx].as_mut().expect("mapped frame exists");
            frame.ref_bit = true;
            return Ok((frame.data.clone(), now));
        }
        inner.stats.misses += 1;
        let idx = self.find_victim(&mut inner, now)?;
        // Drop the lock during the storage read?  The read itself is a pure
        // simulated-time computation, so holding the lock keeps the code
        // simple and the results deterministic.
        let (data, done) = self.backend.read_page(obj, page, now)?;
        let mut data = data;
        if data.len() != PAGE_SIZE {
            data.resize(PAGE_SIZE, 0);
        }
        inner.frames[idx] =
            Some(Frame { key: (obj, page), data: data.clone(), dirty: false, ref_bit: true });
        inner.map.insert((obj, page), idx);
        Ok((data, done))
    }

    /// Prefetch a set of pages into the pool through the backend's
    /// windowed read pipeline ([`StorageBackend::read_windowed`]).
    /// Resident pages are skipped; the rest are fetched with at most
    /// [`BufferPool::flush_window`] reads in flight and installed clean,
    /// so the following demand reads hit without touching storage.
    /// Range scans use this to prime the upcoming stretch of a B⁺-tree
    /// leaf chain so the fetches overlap the region's dies.  Returns the
    /// completion time of the slowest fetch (`now` if everything was
    /// already resident).
    pub fn prefetch(&self, pages: &[(ObjectId, u64)], now: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let mut missing: Vec<(ObjectId, u64)> = Vec::new();
        let mut seen = HashSet::new();
        for &(obj, page) in pages {
            if !inner.map.contains_key(&(obj, page)) && seen.insert((obj, page)) {
                missing.push((obj, page));
            }
        }
        // Prefetching more than fits would evict our own freshly loaded
        // frames; clamp to the pool's capacity.
        missing.truncate(self.capacity);
        if missing.is_empty() {
            return Ok(now);
        }
        let (payloads, done) = self.backend.read_windowed(&missing, now, self.flush_window)?;
        for ((obj, page), mut data) in missing.into_iter().zip(payloads) {
            inner.stats.prefetched += 1;
            let idx = self.find_victim(&mut inner, now)?;
            if data.len() != PAGE_SIZE {
                data.resize(PAGE_SIZE, 0);
            }
            inner.frames[idx] = Some(Frame { key: (obj, page), data, dirty: false, ref_bit: true });
            inner.map.insert((obj, page), idx);
        }
        Ok(done)
    }

    /// Write a page into the pool (dirtying it).  No flash I/O happens now;
    /// the page reaches storage on eviction or an explicit flush.  Returns
    /// `now` unchanged — the caller is not charged.
    pub fn write_page(
        &self,
        obj: ObjectId,
        page: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<SimTime> {
        if data.len() != PAGE_SIZE {
            return Err(DbError::TooLarge {
                message: format!("page write of {} bytes, expected {PAGE_SIZE}", data.len()),
            });
        }
        let mut inner = self.inner.lock();
        inner.stats.logical_writes += 1;
        if let Some(capture) = inner.capture.as_mut() {
            if capture.seen.insert((obj, page)) {
                capture.order.push((obj, page));
            }
        }
        if let Some(&idx) = inner.map.get(&(obj, page)) {
            let frame = inner.frames[idx].as_mut().expect("mapped frame exists");
            frame.data.copy_from_slice(data);
            frame.dirty = true;
            frame.ref_bit = true;
            return Ok(now);
        }
        let idx = self.find_victim(&mut inner, now)?;
        inner.frames[idx] =
            Some(Frame { key: (obj, page), data: data.to_vec(), dirty: true, ref_bit: true });
        inner.map.insert((obj, page), idx);
        Ok(now)
    }

    /// Begin recording the keys of every page written through the pool
    /// (the write set of the transaction being executed).  Any capture in
    /// progress is discarded.
    pub fn begin_capture(&self) {
        self.inner.lock().capture = Some(Capture { order: Vec::new(), seen: HashSet::new() });
    }

    /// Stop capturing and return the dirtied page keys in first-write
    /// order; empty if no capture was active.
    pub fn take_capture(&self) -> Vec<(ObjectId, u64)> {
        self.inner.lock().capture.take().map(|c| c.order).unwrap_or_default()
    }

    /// Current contents of a page if it is resident in the pool (no I/O,
    /// no statistics impact).  Used by commit to snapshot after-images.
    pub fn page_image(&self, obj: ObjectId, page: u64) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        inner
            .map
            .get(&(obj, page))
            .map(|&idx| inner.frames[idx].as_ref().expect("mapped frame exists").data.clone())
    }

    /// Synchronously write one page to storage if it is dirty (used for
    /// WAL-style forced writes).  Returns the completion time (or `now` if
    /// the page was clean or absent).
    pub fn flush_page(&self, obj: ObjectId, page: u64, now: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&(obj, page)) {
            let frame = inner.frames[idx].as_mut().expect("mapped frame exists");
            if frame.dirty {
                let data = frame.data.clone();
                frame.dirty = false;
                let key = frame.key;
                let done = self.backend.write_page(key.0, key.1, &data, now)?;
                inner.stats.flushed += 1;
                return Ok(done);
            }
        }
        Ok(now)
    }

    /// Write back every dirty page through the backend's
    /// completion-driven pipeline: at most [`BufferPool::flush_window`]
    /// pages in flight, each further page issued the instant the oldest
    /// outstanding one completes, overlapping the backend's internal
    /// parallelism (per-die command queues under NoFTL).  The returned
    /// time is the maximum completion over the whole window.  On failure
    /// the frames stay dirty so a later flush retries them.
    pub fn flush_all(&self, now: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let batch: Vec<(ObjectId, u64, Vec<u8>)> = inner
            .frames
            .iter()
            .flatten()
            .filter(|f| f.dirty)
            .map(|f| (f.key.0, f.key.1, f.data.clone()))
            .collect();
        if batch.is_empty() {
            return Ok(now);
        }
        let done = self.backend.write_windowed(&batch, now, self.flush_window)?;
        if let Some(registry) = self.backend.metrics() {
            let hist = self
                .flush_hist
                .get_or_init(|| registry.histogram("dbms.buffer.flush_ns", Unit::SimNanos));
            hist.record(done.since(now).as_nanos());
            // Track 102: buffer-pool spans (see the core obs track map).
            registry.tracer().span(
                "dbms.buffer",
                "flush_all",
                102,
                now.as_nanos(),
                done.as_nanos(),
                &[("pages", batch.len() as u64)],
            );
        }
        let mut flushed = 0u64;
        for frame in inner.frames.iter_mut().flatten() {
            if frame.dirty {
                frame.dirty = false;
                flushed += 1;
            }
        }
        inner.stats.flushed += flushed;
        Ok(done)
    }

    /// Number of dirty pages currently in the pool.
    pub fn dirty_pages(&self) -> usize {
        self.inner.lock().frames.iter().flatten().filter(|f| f.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::NoFtlBackend;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

    fn backend() -> Arc<NoFtlBackend> {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(4, ["t".to_string()]);
        Arc::new(NoFtlBackend::new(noftl, &placement).unwrap())
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; PAGE_SIZE]
    }

    #[test]
    fn writes_are_buffered_and_reads_hit() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 8);
        let t0 = SimTime::ZERO;
        // A logical write costs the caller nothing.
        let t1 = pool.write_page(obj, 0, &page(1), t0).unwrap();
        assert_eq!(t1, t0);
        assert_eq!(pool.dirty_pages(), 1);
        // Reading it back is a hit: also free.
        let (data, t2) = pool.read_page(obj, 0, t1).unwrap();
        assert_eq!(data, page(1));
        assert_eq!(t2, t1);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
        assert_eq!(s.logical_writes, 1);
        assert_eq!(s.hit_ratio(), 1.0);
        // No flash write has happened yet.
        assert_eq!(backend.io_counts().1, 0);
    }

    #[test]
    fn misses_charge_read_latency() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 8);
        pool.write_page(obj, 0, &page(7), SimTime::ZERO).unwrap();
        let done = pool.flush_all(SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        // Build a second pool so the page is not cached.
        let pool2 = BufferPool::new(backend.clone(), 8);
        let (data, t) = pool2.read_page(obj, 0, done).unwrap();
        assert_eq!(data, page(7));
        assert!(t > done, "a miss must pay the flash read latency");
        assert_eq!(pool2.stats().misses, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 4);
        // Dirty more pages than the pool holds.
        for p in 0..10u64 {
            pool.write_page(obj, p, &page(p as u8), SimTime::ZERO).unwrap();
        }
        let s = pool.stats();
        assert!(s.evictions > 0);
        assert!(s.dirty_writebacks > 0);
        assert!(backend.io_counts().1 > 0, "evictions reach the flash");
        // All pages still readable with their latest contents (some from
        // the pool, some from flash).
        for p in 0..10u64 {
            let (data, _) = pool.read_page(obj, p, pool_quiesce(&backend)).unwrap();
            assert_eq!(data, page(p as u8), "page {p}");
        }
    }

    fn pool_quiesce(backend: &Arc<NoFtlBackend>) -> SimTime {
        backend.noftl().device().quiesce_time()
    }

    #[test]
    fn prefetch_installs_clean_frames_and_beats_serial_misses() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 16);
        for p in 0..8u64 {
            pool.write_page(obj, p, &page(p as u8), SimTime::ZERO).unwrap();
        }
        let flushed = pool.flush_all(SimTime::ZERO).unwrap();
        let start = flushed.max(pool_quiesce(&backend));

        // Windowed prefetch on a cold pool: one overlapped batch.  This
        // runs first — simulated time never rewinds, so whichever variant
        // runs second would queue behind the first one's die occupancy.
        let warm = BufferPool::new(backend.clone(), 16);
        let batch: Vec<(ObjectId, u64)> = (0..8u64).map(|p| (obj, p)).collect();
        let done = warm.prefetch(&batch, start).unwrap();
        let prefetch_ns = done.as_nanos() - start.as_nanos();
        assert!(done > start, "prefetch must pay for its flash reads");

        // Serial baseline on another cold pool: chained demand misses,
        // issued from the prefetch's completion (the dies are idle again).
        let cold = BufferPool::new(backend.clone(), 16);
        let serial_start = done.max(pool_quiesce(&backend));
        let mut t = serial_start;
        for p in 0..8u64 {
            t = cold.read_page(obj, p, t).unwrap().1;
        }
        let serial_ns = t.as_nanos() - serial_start.as_nanos();
        assert!(
            prefetch_ns < serial_ns,
            "windowed prefetch ({prefetch_ns} ns) must beat serial misses ({serial_ns} ns)"
        );
        assert_eq!(warm.stats().prefetched, 8);
        assert_eq!(warm.stats().misses, 0);

        // The demand reads now all hit, free of charge, with the data.
        for p in 0..8u64 {
            let (data, t2) = warm.read_page(obj, p, done).unwrap();
            assert_eq!(data, page(p as u8), "page {p}");
            assert_eq!(t2, done, "a primed read must be a hit");
        }
        assert_eq!(warm.stats().hits, 8);
        // Re-prefetching resident pages is free.
        assert_eq!(warm.prefetch(&batch, done).unwrap(), done);
        assert_eq!(warm.stats().prefetched, 8);
    }

    #[test]
    fn flush_page_only_writes_dirty_frames() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 8);
        // Flushing an absent page is a no-op.
        assert_eq!(pool.flush_page(obj, 0, SimTime::ZERO).unwrap(), SimTime::ZERO);
        pool.write_page(obj, 0, &page(1), SimTime::ZERO).unwrap();
        let done = pool.flush_page(obj, 0, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        // Now clean: flushing again is free.
        assert_eq!(pool.flush_page(obj, 0, done).unwrap(), done);
        assert_eq!(pool.dirty_pages(), 0);
    }

    #[test]
    fn bad_page_size_rejected() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend, 8);
        assert!(pool.write_page(obj, 0, &[1, 2, 3], SimTime::ZERO).is_err());
    }

    #[test]
    fn capacity_is_clamped_to_a_minimum() {
        let backend = backend();
        let pool = BufferPool::new(backend, 0);
        assert!(pool.capacity() >= 4);
    }

    #[test]
    fn flush_window_is_configurable_and_preserves_data() {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend.clone(), 32);
        assert_eq!(pool.flush_window(), DEFAULT_FLUSH_WINDOW);
        // A window of 1 degenerates to strictly sequential write-back and
        // must still land every page.
        let pool = BufferPool::new(backend.clone(), 32).with_flush_window(0);
        assert_eq!(pool.flush_window(), 1);
        for p in 0..6u64 {
            pool.write_page(obj, p, &page(p as u8), SimTime::ZERO).unwrap();
        }
        let done = pool.flush_all(SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(pool.dirty_pages(), 0);
        let fresh = BufferPool::new(backend, 32);
        for p in 0..6u64 {
            assert_eq!(fresh.read_page(obj, p, done).unwrap().0, page(p as u8));
        }
    }

    #[test]
    fn windowed_flush_matches_batch_fanout_when_the_window_is_deep() {
        // With a window covering the whole dirty set, the pipeline issues
        // every page at the flush instant — identical simulated timing to
        // the old one-shot write_batch.
        let run = |window: usize| {
            let backend = backend();
            let obj = backend.create_object("t").unwrap();
            let pool = BufferPool::new(backend, 32).with_flush_window(window);
            for p in 0..8u64 {
                pool.write_page(obj, p, &page(p as u8), SimTime::ZERO).unwrap();
            }
            pool.flush_all(SimTime::ZERO).unwrap()
        };
        let deep = run(16);
        let narrow = run(1);
        assert!(deep < narrow, "deep window ({deep}) must overlap dies, window 1 ({narrow}) not");
    }
}
