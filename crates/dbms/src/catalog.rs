//! The catalog: tables, their schemas, heaps and indexes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::btree::BTree;
use crate::error::DbError;
use crate::heap::HeapFile;
use crate::schema::Schema;
use crate::Result;

/// Definition of a secondary (or primary) index.
#[derive(Debug)]
pub struct IndexDef {
    /// Index name (unique within the database).
    pub name: String,
    /// The B+-tree storing the index.
    pub tree: BTree,
}

/// A table: schema, heap file and indexes.
#[derive(Debug)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// The heap file holding the rows.
    pub heap: HeapFile,
    /// Indexes on the table, by name.
    pub indexes: RwLock<HashMap<String, Arc<IndexDef>>>,
}

impl TableDef {
    /// Look up an index of this table.
    pub fn index(&self, name: &str) -> Result<Arc<IndexDef>> {
        self.indexes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::not_found(format!("index '{name}' on table '{}'", self.name)))
    }
}

/// The database catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<TableDef>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table.
    pub fn add_table(&self, table: TableDef) -> Result<Arc<TableDef>> {
        let mut tables = self.tables.write();
        if tables.contains_key(&table.name) {
            return Err(DbError::AlreadyExists { what: format!("table '{}'", table.name) });
        }
        let arc = Arc::new(table);
        tables.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<TableDef>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::not_found(format!("table '{name}'")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn table(name: &str) -> TableDef {
        TableDef {
            name: name.to_string(),
            schema: Schema::new(vec![("id", ColumnType::Int)]),
            heap: HeapFile::new(1),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    #[test]
    fn add_and_lookup_tables() {
        let catalog = Catalog::new();
        catalog.add_table(table("customer")).unwrap();
        catalog.add_table(table("stock")).unwrap();
        assert!(catalog.table("customer").is_ok());
        assert!(catalog.table("nope").is_err());
        assert_eq!(catalog.table_count(), 2);
        assert_eq!(catalog.table_names(), vec!["customer".to_string(), "stock".to_string()]);
        // Duplicates rejected.
        assert!(matches!(catalog.add_table(table("stock")), Err(DbError::AlreadyExists { .. })));
    }

    #[test]
    fn index_lookup_on_table() {
        let catalog = Catalog::new();
        let t = catalog.add_table(table("orders")).unwrap();
        assert!(t.index("o_idx").is_err());
        t.indexes.write().insert(
            "o_idx".to_string(),
            Arc::new(IndexDef { name: "o_idx".to_string(), tree: BTree::new(2) }),
        );
        assert!(t.index("o_idx").is_ok());
    }
}
