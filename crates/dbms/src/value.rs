//! Values and records.
//!
//! Records are encoded with a fixed layout derived from the table schema
//! (see [`crate::schema`]): integers and floats take 8 bytes, strings are
//! padded to their declared maximum length.  A fixed layout keeps every
//! record of a table the same size, so in-place updates never need to
//! relocate a record — which matches how TPC-C updates behave.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (used for money/quantity columns).
    Float(f64),
    /// Variable-content string, stored padded to the column's declared size.
    Str(String),
}

impl Value {
    /// The integer inside, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float inside, accepting both [`Value::Float`] and [`Value::Int`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string inside, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A record: one value per column, in schema order.
pub type Record = Vec<Value>;

/// Encode an integer key component with order-preserving big-endian
/// encoding (sign bit flipped so negative numbers sort before positives).
pub fn encode_key_int(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decode a key component produced by [`encode_key_int`].
pub fn decode_key_int(b: &[u8]) -> i64 {
    let raw = u64::from_be_bytes(b[..8].try_into().expect("8 bytes"));
    (raw ^ (1u64 << 63)) as i64
}

/// Build a composite, order-preserving key from integer components
/// (the form every TPC-C index key takes).
pub fn composite_key(parts: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        out.extend_from_slice(&encode_key_int(*p));
    }
    out
}

/// Build a composite key ending in a string component (used by the TPC-C
/// customer-by-last-name index).  The string is padded with zero bytes to
/// `pad` so keys stay fixed-length and order-preserving.
pub fn composite_key_with_str(parts: &[i64], s: &str, pad: usize) -> Vec<u8> {
    let mut out = composite_key(parts);
    let bytes = s.as_bytes();
    let take = bytes.len().min(pad);
    out.extend_from_slice(&bytes[..take]);
    out.resize(parts.len() * 8 + pad, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accessors_and_conversions() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from(5i32).as_int(), Some(5));
        assert_eq!(Value::from(5u32).as_int(), Some(5));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from("hi".to_string()).as_str(), Some("hi"));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(format!("{}", Value::Int(3)), "3");
        assert_eq!(format!("{}", Value::Str("a".into())), "'a'");
    }

    #[test]
    fn key_encoding_preserves_order() {
        let values = [-100i64, -1, 0, 1, 7, 1000, i64::MAX, i64::MIN];
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let mut encoded: Vec<[u8; 8]> = sorted.iter().map(|v| encode_key_int(*v)).collect();
        let mut resorted = encoded.clone();
        resorted.sort_unstable();
        encoded.sort_unstable();
        assert_eq!(encoded, resorted);
        for v in values {
            assert_eq!(decode_key_int(&encode_key_int(v)), v);
        }
    }

    #[test]
    fn composite_keys_sort_lexicographically_by_component() {
        let a = composite_key(&[1, 5]);
        let b = composite_key(&[1, 6]);
        let c = composite_key(&[2, 0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn composite_key_with_string_component() {
        let a = composite_key_with_str(&[1, 2], "ABLE", 16);
        let b = composite_key_with_str(&[1, 2], "BAKER", 16);
        let c = composite_key_with_str(&[1, 3], "ABLE", 16);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.len(), 2 * 8 + 16);
        // Over-long strings are truncated to the pad length.
        let long = composite_key_with_str(&[], &"X".repeat(100), 8);
        assert_eq!(long.len(), 8);
    }

    proptest! {
        #[test]
        fn int_key_order_is_preserved(a in any::<i64>(), b in any::<i64>()) {
            let ka = encode_key_int(a);
            let kb = encode_key_int(b);
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }

        #[test]
        fn composite_order_matches_tuple_order(a1 in -1000i64..1000, a2 in -1000i64..1000,
                                               b1 in -1000i64..1000, b2 in -1000i64..1000) {
            let ka = composite_key(&[a1, a2]);
            let kb = composite_key(&[b1, b2]);
            prop_assert_eq!((a1, a2).cmp(&(b1, b2)), ka.cmp(&kb));
        }
    }
}
