//! Slotted 4 KiB data pages.
//!
//! Layout:
//!
//! ```text
//! +--------+-----------------------+............+----------------------+
//! | header | slot directory -->    |   free     |   <-- record data    |
//! +--------+-----------------------+............+----------------------+
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16` (offset where record data
//!   begins, records grow downwards from the page end);
//! * slot: `offset: u16`, `len: u16`; a slot with `offset == 0` is a
//!   tombstone (page offsets below the header are impossible, so 0 is free
//!   to use as the dead marker).

use crate::error::DbError;
use crate::Result;
use crate::PAGE_SIZE;

const HEADER_LEN: usize = 4;
const SLOT_LEN: usize = 4;

/// A slotted page over a fixed 4 KiB buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlottedPage {
    buf: Vec<u8>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// Create an empty page.
    pub fn new() -> Self {
        let mut buf = vec![0u8; PAGE_SIZE];
        // slot_count = 0, free_end = PAGE_SIZE
        buf[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        SlottedPage { buf }
    }

    /// Interpret an existing 4 KiB buffer as a slotted page.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self> {
        if buf.len() != PAGE_SIZE {
            return Err(DbError::Corrupted {
                message: format!("page buffer has {} bytes, expected {PAGE_SIZE}", buf.len()),
            });
        }
        Ok(SlottedPage { buf })
    }

    /// The raw page bytes (for writing back to storage).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the page, returning the raw buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.buf[0..2].try_into().expect("2 bytes"))
    }

    fn set_slot_count(&mut self, v: u16) {
        self.buf[0..2].copy_from_slice(&v.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.buf[2..4].try_into().expect("2 bytes"))
    }

    fn set_free_end(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER_LEN + idx as usize * SLOT_LEN;
        let off = u16::from_le_bytes(self.buf[base..base + 2].try_into().expect("2 bytes"));
        let len = u16::from_le_bytes(self.buf[base + 2..base + 4].try_into().expect("2 bytes"));
        (off, len)
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let base = HEADER_LEN + idx as usize * SLOT_LEN;
        self.buf[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of live (non-deleted) records on the page.
    pub fn live_records(&self) -> usize {
        (0..self.slot_count()).filter(|i| self.slot(*i).0 != 0).count()
    }

    /// Number of slots (live or dead).
    pub fn slots(&self) -> u16 {
        self.slot_count()
    }

    /// Contiguous free space available for a new record (including its slot).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_LEN + self.slot_count() as usize * SLOT_LEN;
        (self.free_end() as usize).saturating_sub(dir_end)
    }

    /// True if a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_LEN
    }

    /// Insert a record, returning its slot number, or `None` if it does not
    /// fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if record.is_empty() || record.len() > u16::MAX as usize || !self.fits(record.len()) {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() as usize - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end as u16);
        self.set_slot_count(slot + 1);
        self.set_slot(slot, new_end as u16, record.len() as u16);
        Some(slot)
    }

    /// Read the record in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(DbError::InvalidRid { message: format!("slot {slot} out of range") });
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return Err(DbError::InvalidRid { message: format!("slot {slot} is deleted") });
        }
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Overwrite the record in `slot` in place.  The new record must not be
    /// larger than the existing one (fixed-layout records never are).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(DbError::InvalidRid { message: format!("slot {slot} out of range") });
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return Err(DbError::InvalidRid { message: format!("slot {slot} is deleted") });
        }
        if record.len() > len as usize {
            return Err(DbError::TooLarge {
                message: format!("update of {} bytes into a {len}-byte record", record.len()),
            });
        }
        self.buf[off as usize..off as usize + record.len()].copy_from_slice(record);
        if record.len() < len as usize {
            self.set_slot(slot, off, record.len() as u16);
        }
        Ok(())
    }

    /// Delete the record in `slot` (tombstone; space is not compacted).
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(DbError::InvalidRid { message: format!("slot {slot} out of range") });
        }
        let (off, _) = self.slot(slot);
        if off == 0 {
            return Err(DbError::InvalidRid { message: format!("slot {slot} already deleted") });
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            if off == 0 {
                None
            } else {
                Some((i, &self.buf[off as usize..off as usize + len as usize]))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_page_properties() {
        let p = SlottedPage::new();
        assert_eq!(p.live_records(), 0);
        assert_eq!(p.slots(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_LEN);
        assert!(p.fits(100));
        assert_eq!(p.as_bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn insert_get_update_delete() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
        p.update(s0, b"HELLO").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"HELLO");
        // Shrinking updates adjust the visible length.
        p.update(s1, b"hi").unwrap();
        assert_eq!(p.get(s1).unwrap(), b"hi");
        // Growing updates are rejected.
        assert!(matches!(p.update(s1, b"too long now"), Err(DbError::TooLarge { .. })));
        p.delete(s0).unwrap();
        assert!(p.get(s0).is_err());
        assert!(p.delete(s0).is_err());
        assert_eq!(p.live_records(), 1);
        let collected: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(collected, vec![(s1, b"hi".to_vec())]);
    }

    #[test]
    fn page_fills_up_and_rejects_overflow() {
        let mut p = SlottedPage::new();
        let rec = vec![7u8; 100];
        let mut inserted = 0;
        while p.insert(&rec).is_some() {
            inserted += 1;
        }
        // 4 KiB / (100 + 4 slot bytes) ≈ 39 records.
        assert!((35..=40).contains(&inserted), "inserted {inserted}");
        assert!(!p.fits(100));
        // Records survive a serialization roundtrip.
        let restored = SlottedPage::from_bytes(p.as_bytes().to_vec()).unwrap();
        assert_eq!(restored.live_records(), inserted);
        assert_eq!(restored.get(0).unwrap(), &rec[..]);
    }

    #[test]
    fn invalid_inputs() {
        let mut p = SlottedPage::new();
        assert!(p.insert(&[]).is_none());
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert!(p.get(0).is_err());
        assert!(p.update(3, b"x").is_err());
        assert!(p.delete(3).is_err());
        assert!(SlottedPage::from_bytes(vec![0u8; 100]).is_err());
    }

    proptest! {
        /// Inserted records always read back verbatim, regardless of order
        /// and interleaved deletes.
        #[test]
        fn insert_read_consistency(records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 1..30)) {
            let mut p = SlottedPage::new();
            let mut stored: Vec<(u16, Vec<u8>)> = Vec::new();
            for r in &records {
                if let Some(slot) = p.insert(r) {
                    stored.push((slot, r.clone()));
                }
            }
            for (slot, expected) in &stored {
                prop_assert_eq!(p.get(*slot).unwrap(), &expected[..]);
            }
            prop_assert_eq!(p.live_records(), stored.len());
        }
    }
}
