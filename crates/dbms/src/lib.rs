//! # dbms-engine — a small storage engine over native flash or a block device
//!
//! The paper integrates NoFTL regions into Shore-MT and drives them with
//! TPC-C.  This crate is the equivalent substrate for the reproduction: a
//! compact but complete storage engine providing
//!
//! * fixed 4 KiB **slotted pages** ([`page`]) and schema-driven record
//!   encoding ([`value`], [`schema`]);
//! * **heap files** with a free-space map ([`heap`]);
//! * **B+-tree** secondary/primary indexes ([`btree`]);
//! * a **buffer pool** with clock eviction and background write-back
//!   ([`buffer`]) — evictions and flusher batches charge the flash device
//!   but not the transaction's response time, mirroring asynchronous
//!   flushers;
//! * a **catalog**, lightweight **transactions** and a simple **WAL**
//!   ([`catalog`], [`txn`], [`wal`]);
//! * a [`Database`] facade used by the TPC-C workload.
//!
//! The engine is storage-agnostic through the [`StorageBackend`] trait:
//! [`storage::NoFtlBackend`] places objects into NoFTL regions (the
//! paper's proposal), [`storage::BlockBackend`] maps objects onto a legacy
//! block device (an FTL SSD) the way a conventional DBMS would.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod crash_harness;
pub mod db;
pub mod error;
pub mod heap;
pub mod page;
pub mod schema;
pub mod storage;
pub mod txn;
pub mod value;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use catalog::{IndexDef, TableDef};
pub use crash_harness::{run_crash_cycle, CrashHarnessConfig, CrashOutcome};
pub use db::{Database, DatabaseConfig, RecoveryReport};
pub use error::DbError;
pub use heap::RecordId;
pub use schema::{ColumnType, Schema};
pub use storage::{BlockBackend, NoFtlBackend, ObjectId, StorageBackend};
pub use txn::Txn;
pub use value::{Record, Value};
pub use wal::{Lsn, Wal, WalRecord, WalStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DbError>;

/// The fixed page size used throughout the engine (matches the paper's
/// 4 KiB host I/O unit).
pub const PAGE_SIZE: usize = 4096;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn page_size_matches_flash_default() {
        assert_eq!(PAGE_SIZE as u32, flash_sim::FlashGeometry::edbt_paper().page_size);
    }
}
