//! Crash-consistency harness: workload → power cut → reboot → recover →
//! verify.
//!
//! The harness drives a mixed, TPC-C-ish key-value workload (inserts,
//! updates, deletes and occasional rollbacks over an indexed table)
//! against the full NoFTL stack, cuts power at a chosen simulated
//! instant, "reboots" the device by round-tripping its state through a
//! [`flash_sim::DeviceSnapshot`] (optionally via a file-backed image),
//! remounts the storage manager with `NoFtl::mount`, replays the WAL tail
//! with [`Database::recover`] and then verifies the ACID contract:
//!
//! * **no torn pages** — every surviving page passed its checksum;
//! * **no lost committed writes** — every transaction whose commit was
//!   acknowledged before the cut is fully present;
//! * **atomicity** — the one transaction that may have been in flight at
//!   the cut is either completely present or completely absent;
//! * **metadata fidelity** — the remounted manager exposes the same
//!   regions and objects as the pre-crash instance.
//!
//! Because the simulator is deterministic, the harness first performs a
//! *dry run* to learn the workload's time span, then rebuilds an
//! identical stack and re-runs it with a power cut armed at
//! `setup_end + fraction · (workload_end - setup_end)` — so a fraction in
//! `[0, 1)` sweeps cut instants across the entire workload, hitting
//! commits, checkpoints, GC and WAL forces alike.

use std::collections::BTreeMap;
use std::sync::Arc;

use flash_sim::{DeviceBuilder, DeviceSnapshot, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_core::{
    MountReport, NoFtl, NoFtlConfig, PlacementConfig, PlacementPolicyKind, RegionAssignment,
};

use crate::db::{
    Database, DatabaseConfig, RecoveryReport, CATALOG_OBJECT, LOG_OBJECT, METADATA_OBJECT,
};
use crate::error::DbError;
use crate::schema::{ColumnType, Schema};
use crate::storage::NoFtlBackend;
use crate::value::Value;
use crate::Result;

/// Table driven by the workload.
const TABLE: &str = "acct";
/// Index on the table's key column.
const INDEX: &str = "acct_idx";

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct CrashHarnessConfig {
    /// Device geometry (default: the tiny unit-test geometry).
    pub geometry: FlashGeometry,
    /// Device timing model.
    pub timing: TimingModel,
    /// Buffer-pool pages.
    pub buffer_pages: usize,
    /// WAL segment budget in pages (small by default so checkpoints and
    /// truncations happen mid-workload).
    pub wal_segment_pages: u64,
    /// Transactions to attempt.
    pub txns: u64,
    /// Distinct keys in the working set.
    pub keys: i64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Round-trip the device snapshot through a file-backed image on
    /// reboot (exercises the persistence path; slower).
    pub image_file: bool,
    /// Die-level write placement under test.  The default honours the
    /// `NOFTL_PLACEMENT` environment variable (falling back to
    /// round-robin), so the whole sweep can be pointed at either policy;
    /// the tier-1 crash tests also alternate it per round explicitly.
    pub placement: PlacementPolicyKind,
    /// Enable the stack's cross-layer event tracer for the cycle.  The
    /// determinism tests run identical cycles with this on and off and
    /// require byte-identical mount reports — tracing must never perturb
    /// recovery.
    pub trace: bool,
    /// Crash-during-recovery schedule: number of *additional* power cuts
    /// to land while the recovery mount itself is scanning the device.
    /// Each interrupted boot is treated as a crash of its own (the torn
    /// device round-trips through a snapshot again) before the mount is
    /// retried; the final mount must still satisfy every ACID check.
    pub mount_cuts: u64,
}

impl Default for CrashHarnessConfig {
    fn default() -> Self {
        CrashHarnessConfig {
            geometry: FlashGeometry::small_test(),
            timing: TimingModel::mlc_2015(),
            buffer_pages: 64,
            wal_segment_pages: 8,
            txns: 120,
            keys: 32,
            seed: 0xC0FFEE,
            image_file: false,
            placement: PlacementPolicyKind::from_env(PlacementPolicyKind::RoundRobin),
            trace: false,
            mount_cuts: 0,
        }
    }
}

/// Outcome of one workload → cut → recover → verify cycle.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// The armed power-cut instant.
    pub cut_at: SimTime,
    /// Transactions whose commit was acknowledged before the cut.
    pub committed_txns: u64,
    /// Whether the cut interrupted a commit (whose effects may then
    /// legitimately survive in full).
    pub cut_during_commit: bool,
    /// Whether the in-flight transaction's effects survived recovery.
    pub in_flight_survived: bool,
    /// Rows present (and verified) after recovery.
    pub rows_verified: u64,
    /// The storage-manager mount summary.
    pub mount: MountReport,
    /// The database recovery summary.
    pub recovery: RecoveryReport,
    /// WAL pages at the moment of the crash (log length the redo pass had
    /// to consider).
    pub wal_pages_at_crash: u64,
    /// Recovery mounts that were themselves interrupted by a power cut
    /// before the final mount succeeded (see
    /// [`CrashHarnessConfig::mount_cuts`]).
    pub interrupted_mounts: u64,
}

/// Deterministic SplitMix64, the harness's workload RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn key_bytes(key: i64) -> Vec<u8> {
    key.to_be_bytes().to_vec()
}

fn row(key: i64, val: i64) -> Vec<Value> {
    vec![Value::Int(key), Value::Int(val), Value::Str(format!("pad-{val:016x}"))]
}

fn schema() -> Schema {
    Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int), ("pad", ColumnType::Str(32))])
}

fn placement() -> PlacementConfig {
    PlacementConfig {
        regions: vec![
            RegionAssignment {
                region_name: "rgData".into(),
                objects: vec![TABLE.into(), INDEX.into()],
                dies: 2,
                service_class: None,
            },
            RegionAssignment {
                region_name: "rgLog".into(),
                objects: vec![
                    LOG_OBJECT.to_string(),
                    METADATA_OBJECT.to_string(),
                    CATALOG_OBJECT.to_string(),
                ],
                dies: 1,
                service_class: None,
            },
        ],
    }
}

struct Stack {
    device: Arc<NandDevice>,
    noftl: Arc<NoFtl>,
    db: Database,
}

fn db_config(cfg: &CrashHarnessConfig) -> DatabaseConfig {
    DatabaseConfig {
        buffer_pages: cfg.buffer_pages,
        wal_enabled: true,
        redo_logging: true,
        wal_segment_pages: cfg.wal_segment_pages,
        ..DatabaseConfig::default()
    }
}

/// Build device → NoFTL → backend → database and run the DDL setup,
/// finishing with a checkpoint.  Returns the stack and the setup end time.
fn noftl_config(cfg: &CrashHarnessConfig) -> NoFtlConfig {
    NoFtlConfig { placement: cfg.placement, ..NoFtlConfig::default() }
}

fn build_stack(cfg: &CrashHarnessConfig) -> Result<(Stack, SimTime)> {
    // The infallible `Default` impl can only log a malformed placement
    // override; here the harness can return it as a proper config error.
    PlacementPolicyKind::try_from_env(cfg.placement)?;
    let device = Arc::new(DeviceBuilder::new(cfg.geometry).timing(cfg.timing).build());
    device.metrics().tracer().set_enabled(cfg.trace);
    let noftl = Arc::new(NoFtl::new(device.clone(), noftl_config(cfg)));
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement())?);
    let db = Database::open(backend, db_config(cfg))?;
    let t0 = SimTime::ZERO;
    db.create_table(TABLE, schema(), t0)?;
    db.create_index(TABLE, INDEX, t0)?;
    let setup_end = db.checkpoint(t0)?.max(device.quiesce_time());
    Ok((Stack { device, noftl, db }, setup_end))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPhase {
    /// No crash happened (dry run, or the cut was never reached).
    None,
    /// Crash before the in-flight transaction reached commit.
    DuringOps,
    /// Crash inside commit: the transaction may or may not be durable.
    DuringCommit,
}

struct RunResult {
    committed: BTreeMap<i64, i64>,
    /// Full post-transaction world of the transaction in flight at the
    /// crash (only meaningful when `phase == DuringCommit`).
    with_in_flight: BTreeMap<i64, i64>,
    committed_txns: u64,
    phase: CrashPhase,
    end: SimTime,
    region_names: Vec<String>,
    object_names: Vec<String>,
}

/// Run the workload until `txns` transactions complete or the device
/// loses power.
fn run_workload(cfg: &CrashHarnessConfig, stack: &Stack, start: SimTime) -> RunResult {
    let mut rng = Rng(cfg.seed);
    let mut committed: BTreeMap<i64, i64> = BTreeMap::new();
    let mut committed_txns = 0u64;
    let mut phase = CrashPhase::None;
    let mut with_in_flight = BTreeMap::new();
    let mut now = start;
    let db = &stack.db;
    'txns: for _ in 0..cfg.txns {
        let mut txn = db.begin(now);
        let mut pending = committed.clone();
        let ops = 1 + rng.below(3);
        // ~5 % of transactions abort.  Like TPC-C's NewOrder "unused
        // item" case the decision pre-validates: an aborting transaction
        // only reads (the engine's rollback contract — no undo pass).
        let will_rollback = rng.below(100) < 5;
        if will_rollback {
            for _ in 0..ops {
                let key = rng.below(cfg.keys as u64) as i64;
                let _ = rng.next();
                if db.index_lookup(&mut txn, TABLE, INDEX, &key_bytes(key)).is_err() {
                    phase = CrashPhase::DuringOps;
                    break 'txns;
                }
            }
            db.rollback(&mut txn);
            now = txn.now;
            continue;
        }
        for _ in 0..ops {
            let key = rng.below(cfg.keys as u64) as i64;
            let val = rng.next() as i64;
            let result = if let Some(_old) = pending.get(&key).copied() {
                if rng.below(10) < 7 {
                    // Update through the index.
                    match db.index_lookup(&mut txn, TABLE, INDEX, &key_bytes(key)) {
                        Ok(Some(rid)) => {
                            db.update(&mut txn, TABLE, rid, &row(key, val)).map(|()| {
                                pending.insert(key, val);
                            })
                        }
                        Ok(None) => Err(DbError::Corrupted {
                            message: format!("key {key} committed but missing from index"),
                        }),
                        Err(e) => Err(e),
                    }
                } else {
                    match db.index_lookup(&mut txn, TABLE, INDEX, &key_bytes(key)) {
                        Ok(Some(rid)) => {
                            db.delete(&mut txn, TABLE, rid, &[(INDEX, key_bytes(key))]).map(|()| {
                                pending.remove(&key);
                            })
                        }
                        Ok(None) => Err(DbError::Corrupted {
                            message: format!("key {key} committed but missing from index"),
                        }),
                        Err(e) => Err(e),
                    }
                }
            } else {
                db.insert(&mut txn, TABLE, &row(key, val), &[(INDEX, key_bytes(key))]).map(|_| {
                    pending.insert(key, val);
                })
            };
            if result.is_err() {
                phase = CrashPhase::DuringOps;
                break 'txns;
            }
        }
        match db.commit(&mut txn) {
            Ok(_) => {
                committed = pending;
                committed_txns += 1;
                now = txn.now;
            }
            Err(_) => {
                phase = CrashPhase::DuringCommit;
                with_in_flight = pending;
                break 'txns;
            }
        }
    }
    let mut region_names: Vec<String> = stack
        .noftl
        .region_ids()
        .into_iter()
        .filter_map(|rid| stack.noftl.region_name(rid).ok())
        .collect();
    region_names.sort();
    let mut object_names: Vec<String> =
        stack.noftl.all_object_stats().into_iter().map(|s| s.name).collect();
    object_names.sort();
    RunResult {
        committed,
        with_in_flight,
        committed_txns,
        phase,
        end: now.max(stack.device.quiesce_time()),
        region_names,
        object_names,
    }
}

/// Reboot the device: snapshot the (possibly torn) state and rebuild a
/// fresh device from it, optionally round-tripping through a file-backed
/// image.
fn reboot_device(
    device: &NandDevice,
    timing: TimingModel,
    via_file: bool,
    tag: u64,
) -> Result<Arc<NandDevice>> {
    let snap = device.snapshot();
    let snap = if via_file {
        let path =
            std::env::temp_dir().join(format!("noftl-crash-{}-{tag}.img", std::process::id()));
        snap.save(&path).map_err(DbError::storage)?;
        let loaded = DeviceSnapshot::load(&path).map_err(DbError::storage);
        std::fs::remove_file(&path).ok();
        loaded?
    } else {
        snap
    };
    NandDevice::from_snapshot(&snap, timing).map(Arc::new).map_err(DbError::storage)
}

/// Execute one full crash cycle: workload, power cut at
/// `setup_end + fraction · span`, reboot, mount, recover, verify.
///
/// `fraction` is clamped to `[0, 1)`.  Returns an error if any of the
/// crash-consistency guarantees is violated.
pub fn run_crash_cycle(cfg: &CrashHarnessConfig, fraction: f64) -> Result<CrashOutcome> {
    // Dry run: learn the workload's time span on an identical stack.
    let (dry, dry_setup_end) = build_stack(cfg)?;
    let dry_run = run_workload(cfg, &dry, dry_setup_end);
    assert_eq!(dry_run.phase, CrashPhase::None, "dry run must not crash");

    // Armed run on a fresh, identical stack.
    let (stack, setup_end) = build_stack(cfg)?;
    debug_assert_eq!(setup_end, dry_setup_end, "the simulator is deterministic");
    let span = dry_run.end.as_nanos().saturating_sub(setup_end.as_nanos()).max(1);
    let fraction = fraction.clamp(0.0, 0.999_999);
    let cut_at = SimTime(setup_end.as_nanos() + (span as f64 * fraction) as u64);
    stack.device.arm_power_cut(cut_at);
    let run = run_workload(cfg, &stack, setup_end);
    let wal_pages_at_crash = stack.db.wal_stats().pages;

    // Reboot → mount → recover.  With `mount_cuts > 0` the recovery boot
    // is itself crash-tested: power dies again while the mount is
    // scanning, the torn device round-trips through another snapshot and
    // the mount is retried — a failed mount must leave no state behind
    // that the retry could trip over.
    let mut device2 = reboot_device(&stack.device, cfg.timing, cfg.image_file, cfg.seed)?;
    let mut mount_at = cut_at;
    let mut interrupted_mounts = 0u64;
    for attempt in 0..cfg.mount_cuts {
        // Land the cut a little into the mount's device scan.
        device2.arm_power_cut(SimTime(mount_at.as_nanos() + 40_000 + attempt * 25_000));
        match NoFtl::mount(device2.clone(), noftl_config(cfg), mount_at) {
            Err(noftl_core::NoFtlError::Flash(e)) if e.is_power_loss() => {
                interrupted_mounts += 1;
            }
            Err(e) => return Err(DbError::storage(e)),
            Ok(_) => {
                // The cut landed after the scan finished — legal; the
                // power-cycle below discards this instance anyway.
            }
        }
        device2.clear_power_cut();
        device2 = reboot_device(&device2, cfg.timing, false, cfg.seed ^ (attempt + 1))?;
        mount_at = SimTime(mount_at.as_nanos() + 100_000);
    }
    let (noftl2, mount) =
        NoFtl::mount(device2.clone(), noftl_config(cfg), mount_at).map_err(DbError::storage)?;
    let noftl2 = Arc::new(noftl2);
    let backend2 = Arc::new(NoFtlBackend::attach(Arc::clone(&noftl2), &placement())?);
    let (db2, recovery) = Database::recover(backend2, db_config(cfg), mount.completed_at)?;

    // ---- Verification -------------------------------------------------
    // Region/object state: the mounted manager exposes the same regions
    // and objects the pre-crash instance had.
    let mut region_names: Vec<String> =
        noftl2.region_ids().into_iter().filter_map(|rid| noftl2.region_name(rid).ok()).collect();
    region_names.sort();
    if region_names != run.region_names {
        return Err(DbError::Corrupted {
            message: format!(
                "regions diverged after mount: {region_names:?} != {:?}",
                run.region_names
            ),
        });
    }
    let mut object_names: Vec<String> =
        noftl2.all_object_stats().into_iter().map(|s| s.name).collect();
    object_names.sort();
    if object_names != run.object_names {
        return Err(DbError::Corrupted {
            message: format!(
                "objects diverged after mount: {object_names:?} != {:?}",
                run.object_names
            ),
        });
    }

    // Data: read back every key in the universe through the index.
    let mut txn = db2.begin(recovery_time(&mount));
    let mut actual: BTreeMap<i64, i64> = BTreeMap::new();
    for key in 0..cfg.keys {
        if let Some((_, record)) = db2.index_get(&mut txn, TABLE, INDEX, &key_bytes(key))? {
            match (&record[0], &record[1]) {
                (Value::Int(k), Value::Int(v)) if *k == key => {
                    actual.insert(key, *v);
                }
                _ => {
                    return Err(DbError::Corrupted {
                        message: format!("key {key} decoded to wrong record {record:?}"),
                    })
                }
            }
        }
    }
    let matches_committed = actual == run.committed;
    let matches_in_flight = run.phase == CrashPhase::DuringCommit && actual == run.with_in_flight;
    if !matches_committed && !matches_in_flight {
        return Err(DbError::Corrupted {
            message: format!(
                "recovered state matches neither the committed world ({} keys) nor the \
                 in-flight world; actual has {} keys (phase {:?}, cut at {} ns)",
                run.committed.len(),
                actual.len(),
                run.phase,
                cut_at.as_nanos()
            ),
        });
    }
    // The heap's live-record count must agree with the index view.
    let heap_records = db2.table(TABLE)?.heap.record_count();
    if heap_records != actual.len() as u64 {
        return Err(DbError::Corrupted {
            message: format!(
                "heap holds {heap_records} records but the index sees {}",
                actual.len()
            ),
        });
    }

    Ok(CrashOutcome {
        cut_at,
        committed_txns: run.committed_txns,
        cut_during_commit: run.phase == CrashPhase::DuringCommit,
        in_flight_survived: matches_in_flight && !matches_committed,
        rows_verified: actual.len() as u64,
        mount,
        recovery,
        wal_pages_at_crash,
        interrupted_mounts,
    })
}

fn recovery_time(mount: &MountReport) -> SimTime {
    mount.completed_at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dry_run_without_cut_is_clean() {
        let cfg = CrashHarnessConfig { txns: 30, ..CrashHarnessConfig::default() };
        let (stack, setup_end) = build_stack(&cfg).unwrap();
        let run = run_workload(&cfg, &stack, setup_end);
        assert_eq!(run.phase, CrashPhase::None);
        assert!(run.committed_txns > 20, "committed {}", run.committed_txns);
        assert!(!run.committed.is_empty());
        assert!(stack.db.wal_stats().truncations > 0, "segment guard must fire");
    }

    #[test]
    fn mid_workload_cut_recovers() {
        let cfg = CrashHarnessConfig { txns: 60, ..CrashHarnessConfig::default() };
        let outcome = run_crash_cycle(&cfg, 0.5).unwrap();
        assert!(outcome.committed_txns > 0);
        assert!(outcome.mount.checkpoint_seq > 0);
    }

    #[test]
    fn cut_during_recovery_mount_retries_and_recovers() {
        let cfg = CrashHarnessConfig { txns: 50, mount_cuts: 2, ..CrashHarnessConfig::default() };
        let outcome = run_crash_cycle(&cfg, 0.6).unwrap();
        // At least one of the two armed cuts must actually have landed
        // inside the mount scan; recovery after the retries still passes
        // every ACID check (run_crash_cycle errors otherwise).
        assert!(outcome.interrupted_mounts > 0, "no mount was interrupted");
        assert!(outcome.committed_txns > 0);
    }

    #[test]
    fn cut_through_file_backed_image_recovers() {
        let cfg =
            CrashHarnessConfig { txns: 40, image_file: true, ..CrashHarnessConfig::default() };
        let outcome = run_crash_cycle(&cfg, 0.7).unwrap();
        assert!(outcome.rows_verified <= cfg.keys as u64);
    }
}
