//! Heap files: unordered collections of records in slotted pages.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use flash_sim::SimTime;

use crate::buffer::BufferPool;
use crate::error::DbError;
use crate::page::SlottedPage;
use crate::storage::ObjectId;
use crate::Result;

/// Physical address of a record: page number within the heap plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId {
    /// Logical page number within the heap object.
    pub page: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Construct a record id.
    pub fn new(page: u64, slot: u16) -> Self {
        RecordId { page, slot }
    }

    /// Pack into 10 bytes (used as B+-tree payload).
    pub fn encode(&self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..8].copy_from_slice(&self.page.to_le_bytes());
        out[8..].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Inverse of [`RecordId::encode`]; `None` if the buffer is too short.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 10 {
            return None;
        }
        Some(RecordId {
            page: u64::from_le_bytes(buf[..8].try_into().ok()?),
            slot: u16::from_le_bytes(buf[8..10].try_into().ok()?),
        })
    }
}

#[derive(Debug)]
struct HeapInner {
    /// Number of pages allocated so far.
    page_count: u64,
    /// The page currently being filled by inserts.
    fill_page: Option<u64>,
    /// Live record estimate.
    records: u64,
}

/// A heap file storing fixed-schema records in slotted pages.
///
/// Deleted record space is reclaimed when new inserts land on the same
/// page, but pages are never returned to the storage manager; for the
/// bounded benchmark runs in this repository that is sufficient (and it is
/// what Shore-MT's heap does within a run, too).
#[derive(Debug)]
pub struct HeapFile {
    obj: ObjectId,
    inner: Mutex<HeapInner>,
}

impl HeapFile {
    /// Create an empty heap over storage object `obj`.
    pub fn new(obj: ObjectId) -> Self {
        HeapFile {
            obj,
            inner: Mutex::new(HeapInner { page_count: 0, fill_page: None, records: 0 }),
        }
    }

    /// The storage object backing this heap.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// Re-attach to a heap that survived a crash: `extent` is the object's
    /// logical extent on storage (from the backend).  Pages that never
    /// became durable (they belonged only to uncommitted transactions) are
    /// tolerated as empty.  Returns the heap and the time at which the
    /// record-count scan finished.
    pub fn attach(
        obj: ObjectId,
        pool: &BufferPool,
        extent: u64,
        now: SimTime,
    ) -> Result<(HeapFile, SimTime)> {
        let mut records = 0u64;
        let mut t = now;
        for page_no in 0..extent {
            let Ok((bytes, t_read)) = pool.read_page(obj, page_no, t) else { continue };
            t = t_read;
            if let Ok(page) = SlottedPage::from_bytes(bytes) {
                records += page.iter().count() as u64;
            }
        }
        let heap = HeapFile {
            obj,
            inner: Mutex::new(HeapInner {
                page_count: extent,
                fill_page: extent.checked_sub(1),
                records,
            }),
        };
        Ok((heap, t))
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().page_count
    }

    /// Approximate number of live records.
    pub fn record_count(&self) -> u64 {
        self.inner.lock().records
    }

    /// Insert a record, returning its id.
    pub fn insert(
        &self,
        pool: &BufferPool,
        record: &[u8],
        now: SimTime,
    ) -> Result<(RecordId, SimTime)> {
        let mut inner = self.inner.lock();
        let mut t = now;
        // Try the current fill page first.
        if let Some(page_no) = inner.fill_page {
            let (bytes, t_read) = pool.read_page(self.obj, page_no, t)?;
            t = t_read;
            let mut page = SlottedPage::from_bytes(bytes)?;
            if let Some(slot) = page.insert(record) {
                let t_write = pool.write_page(self.obj, page_no, page.as_bytes(), t)?;
                inner.records += 1;
                return Ok((RecordId::new(page_no, slot), t_write));
            }
        }
        // Allocate a fresh page.
        let page_no = inner.page_count;
        inner.page_count += 1;
        inner.fill_page = Some(page_no);
        let mut page = SlottedPage::new();
        let slot = page.insert(record).ok_or_else(|| DbError::TooLarge {
            message: format!("record of {} bytes does not fit in an empty page", record.len()),
        })?;
        let t_write = pool.write_page(self.obj, page_no, page.as_bytes(), t)?;
        inner.records += 1;
        Ok((RecordId::new(page_no, slot), t_write))
    }

    /// Read the record at `rid`.
    pub fn get(
        &self,
        pool: &BufferPool,
        rid: RecordId,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimTime)> {
        let (bytes, t) = pool.read_page(self.obj, rid.page, now)?;
        let page = SlottedPage::from_bytes(bytes)?;
        Ok((page.get(rid.slot)?.to_vec(), t))
    }

    /// Overwrite the record at `rid` in place.
    pub fn update(
        &self,
        pool: &BufferPool,
        rid: RecordId,
        record: &[u8],
        now: SimTime,
    ) -> Result<SimTime> {
        let (bytes, t) = pool.read_page(self.obj, rid.page, now)?;
        let mut page = SlottedPage::from_bytes(bytes)?;
        page.update(rid.slot, record)?;
        pool.write_page(self.obj, rid.page, page.as_bytes(), t)
    }

    /// Delete the record at `rid`.
    pub fn delete(&self, pool: &BufferPool, rid: RecordId, now: SimTime) -> Result<SimTime> {
        let (bytes, t) = pool.read_page(self.obj, rid.page, now)?;
        let mut page = SlottedPage::from_bytes(bytes)?;
        page.delete(rid.slot)?;
        let t = pool.write_page(self.obj, rid.page, page.as_bytes(), t)?;
        let mut inner = self.inner.lock();
        inner.records = inner.records.saturating_sub(1);
        Ok(t)
    }

    /// Scan the whole heap, invoking `f(rid, record_bytes)` for every live
    /// record.  Returns the time at which the scan completes.
    pub fn scan<F: FnMut(RecordId, &[u8])>(
        &self,
        pool: &BufferPool,
        now: SimTime,
        mut f: F,
    ) -> Result<SimTime> {
        let page_count = self.inner.lock().page_count;
        let mut t = now;
        for page_no in 0..page_count {
            let (bytes, t_read) = pool.read_page(self.obj, page_no, t)?;
            t = t_read;
            let page = SlottedPage::from_bytes(bytes)?;
            for (slot, rec) in page.iter() {
                f(RecordId::new(page_no, slot), rec);
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{NoFtlBackend, StorageBackend};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<NoFtlBackend>, BufferPool, HeapFile) {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, ["heap".to_string()]);
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
        let obj = backend.create_object("heap").unwrap();
        let pool = BufferPool::new(backend.clone(), 32);
        (backend, pool, HeapFile::new(obj))
    }

    #[test]
    fn rid_encoding_roundtrip() {
        let rid = RecordId::new(123456, 42);
        assert_eq!(RecordId::decode(&rid.encode()), Some(rid));
        assert_eq!(RecordId::decode(&[0u8; 3]), None);
    }

    #[test]
    fn insert_get_update_delete() {
        let (_, pool, heap) = setup();
        let t = SimTime::ZERO;
        let (rid, t) = heap.insert(&pool, b"record-one", t).unwrap();
        let (data, t) = heap.get(&pool, rid, t).unwrap();
        assert_eq!(data, b"record-one");
        let t = heap.update(&pool, rid, b"record-two", t).unwrap();
        let (data, t) = heap.get(&pool, rid, t).unwrap();
        assert_eq!(data, b"record-two");
        assert_eq!(heap.record_count(), 1);
        heap.delete(&pool, rid, t).unwrap();
        assert!(heap.get(&pool, rid, t).is_err());
        assert_eq!(heap.record_count(), 0);
    }

    #[test]
    fn inserts_spill_to_new_pages() {
        let (_, pool, heap) = setup();
        let record = vec![9u8; 500];
        let mut t = SimTime::ZERO;
        let mut rids = Vec::new();
        for _ in 0..50 {
            let (rid, t2) = heap.insert(&pool, &record, t).unwrap();
            rids.push(rid);
            t = t2;
        }
        // 4 KiB pages hold ~8 records of 500 bytes → several pages needed.
        assert!(heap.page_count() >= 6, "page_count = {}", heap.page_count());
        assert_eq!(heap.record_count(), 50);
        for rid in rids {
            assert_eq!(heap.get(&pool, rid, t).unwrap().0, record);
        }
    }

    #[test]
    fn oversized_record_is_rejected() {
        let (_, pool, heap) = setup();
        let record = vec![0u8; crate::PAGE_SIZE];
        assert!(matches!(
            heap.insert(&pool, &record, SimTime::ZERO),
            Err(DbError::TooLarge { .. })
        ));
    }

    #[test]
    fn scan_visits_all_live_records() {
        let (_, pool, heap) = setup();
        let mut t = SimTime::ZERO;
        let mut expected = Vec::new();
        for i in 0..30u8 {
            let rec = vec![i; 200];
            let (rid, t2) = heap.insert(&pool, &rec, t).unwrap();
            t = t2;
            expected.push((rid, rec));
        }
        // Delete a few.
        heap.delete(&pool, expected[3].0, t).unwrap();
        heap.delete(&pool, expected[17].0, t).unwrap();
        expected.remove(17);
        expected.remove(3);
        let mut seen = Vec::new();
        heap.scan(&pool, t, |rid, rec| seen.push((rid, rec.to_vec()))).unwrap();
        seen.sort();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();
        assert_eq!(seen, expected_sorted);
    }

    #[test]
    fn data_survives_pool_eviction_pressure() {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, ["heap".to_string()]);
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
        let obj = backend.create_object("heap").unwrap();
        // Tiny pool: constant evictions.
        let pool = BufferPool::new(backend.clone(), 4);
        let heap = HeapFile::new(obj);
        let mut t = SimTime::ZERO;
        let mut rids = Vec::new();
        for i in 0..40u8 {
            let (rid, t2) = heap.insert(&pool, &vec![i; 900], t).unwrap();
            rids.push((rid, i));
            t = t2;
        }
        for (rid, i) in rids {
            let (data, _) = heap.get(&pool, rid, t).unwrap();
            assert_eq!(data, vec![i; 900]);
        }
        assert!(pool.stats().evictions > 0);
    }
}
