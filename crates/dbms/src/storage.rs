//! Storage backends: where pages physically live.
//!
//! The same engine runs on two very different storage stacks:
//!
//! * [`NoFtlBackend`] — the paper's proposal: objects are registered
//!   directly with the NoFTL storage manager and placed into **regions**
//!   according to a [`PlacementConfig`]; the flash is addressed natively.
//! * [`BlockBackend`] — the conventional stack: objects are mapped onto
//!   extents of a legacy block device (e.g. the FTL SSD from `ftl-sim`),
//!   which hides all flash knowledge from the DBMS.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::SimTime;
use ftl_sim::BlockDevice;
use noftl_core::{NoFtl, PlacementConfig, RegionId, RegionSpec};

use crate::error::DbError;
use crate::Result;

/// Identifier of a storage object (table heap, index, WAL, catalog...).
pub type ObjectId = u32;

/// Abstraction over the storage stack underneath the buffer pool.
pub trait StorageBackend: Send + Sync {
    /// Page size in bytes (4 KiB throughout this repository).
    fn page_size(&self) -> u32;

    /// Register a new object.  The backend decides placement (e.g. which
    /// region) based on the object's name.
    fn create_object(&self, name: &str) -> Result<ObjectId>;

    /// Look up an existing object by name (used by recovery to re-attach
    /// to objects that survived a crash).
    fn lookup_object(&self, name: &str) -> Option<ObjectId>;

    /// Logical extent of an object: highest written page number plus one
    /// (0 for an empty object).
    fn object_extent(&self, obj: ObjectId) -> Result<u64>;

    /// Checkpoint backend-level metadata (a no-op for backends without
    /// any).  The NoFTL backend journals its region metadata here so that
    /// a crashed device can be remounted.
    fn checkpoint(&self, at: SimTime) -> Result<SimTime> {
        Ok(at)
    }

    /// Read a logical page of an object.
    fn read_page(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)>;

    /// Read a batch of pages through a bounded completion-driven
    /// pipeline — the read-side counterpart of
    /// [`StorageBackend::write_windowed`].  At most `window` reads are in
    /// flight; each further read is issued at the completion of the
    /// oldest outstanding one.  Returns the payloads **in request order**
    /// plus the maximum completion over the whole window.  Range scans
    /// and compaction merges drive this so their page fetches overlap the
    /// region's dies instead of serializing.  Backends without
    /// asynchronous submission fall back to chained `read_page` calls.
    fn read_windowed(
        &self,
        reads: &[(ObjectId, u64)],
        at: SimTime,
        window: usize,
    ) -> Result<(Vec<Vec<u8>>, SimTime)> {
        let _ = window;
        let mut out = Vec::with_capacity(reads.len());
        let mut clock = at;
        for (obj, page) in reads {
            let (data, done) = self.read_page(*obj, *page, clock)?;
            clock = clock.max(done);
            out.push(data);
        }
        Ok((out, clock))
    }

    /// Write a logical page of an object.
    fn write_page(&self, obj: ObjectId, page: u64, data: &[u8], at: SimTime) -> Result<SimTime>;

    /// Write a batch of pages, all issued at `at`; returns the completion
    /// time of the slowest one.  Backends with internal parallelism (the
    /// NoFTL stack's per-die command queues) overlap the writes; the
    /// default implementation degrades to sequential `write_page` calls
    /// that still share the issue time.
    fn write_batch(&self, writes: &[(ObjectId, u64, Vec<u8>)], at: SimTime) -> Result<SimTime> {
        let mut done = at;
        for (obj, page, data) in writes {
            done = done.max(self.write_page(*obj, *page, data, at)?);
        }
        Ok(done)
    }

    /// Write a batch through a bounded completion-driven pipeline: at
    /// most `window` pages in flight, each further page issued at the
    /// completion of the oldest outstanding one, returning the maximum
    /// completion over the whole window.  The buffer pool's flushers
    /// drive this so checkpoint write-back overlaps the region's dies
    /// without unbounded outstanding I/O.  Backends without asynchronous
    /// submission fall back to [`StorageBackend::write_batch`].
    fn write_windowed(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
        window: usize,
    ) -> Result<SimTime> {
        let _ = window;
        self.write_batch(writes, at)
    }

    /// The metrics registry of the stack underneath, when the backend
    /// has one (the NoFTL stack shares the flash device's registry; the
    /// legacy block backend reports nothing).  The WAL and buffer pool
    /// record their force/flush latencies through this.
    fn metrics(&self) -> Option<&Arc<noftl_obs::MetricsRegistry>> {
        None
    }

    /// Release a logical page.
    fn free_page(&self, obj: ObjectId, page: u64) -> Result<()>;

    /// Total host reads and writes served by the backend so far.
    fn io_counts(&self) -> (u64, u64);
}

// ---------------------------------------------------------------------
// NoFTL backend
// ---------------------------------------------------------------------

/// Storage backend that places objects into NoFTL regions.
pub struct NoFtlBackend {
    noftl: Arc<NoFtl>,
    placement: PlacementConfig,
    regions: HashMap<String, RegionId>,
    default_region: RegionId,
}

impl NoFtlBackend {
    /// Create the backend, creating one NoFTL region per entry of the
    /// placement configuration (with the configured number of dies).
    /// Objects whose name does not appear in the configuration fall back
    /// to the first region.
    pub fn new(noftl: Arc<NoFtl>, placement: &PlacementConfig) -> Result<Self> {
        let mut regions = HashMap::new();
        let mut default_region = None;
        for assignment in &placement.regions {
            let mut spec =
                RegionSpec::named(&assignment.region_name).with_die_count(assignment.dies);
            spec.service_class = assignment.service_class;
            let rid = noftl.create_region(spec).map_err(DbError::storage)?;
            if default_region.is_none() {
                default_region = Some(rid);
            }
            regions.insert(assignment.region_name.clone(), rid);
        }
        let default_region = default_region.ok_or_else(|| DbError::Storage {
            message: "placement configuration has no regions".to_string(),
        })?;
        Ok(NoFtlBackend { noftl, placement: placement.clone(), regions, default_region })
    }

    /// Attach to a *mounted* NoFTL manager whose regions already exist
    /// (after `NoFtl::mount`), resolving the placement configuration's
    /// regions by name instead of creating them.
    pub fn attach(noftl: Arc<NoFtl>, placement: &PlacementConfig) -> Result<Self> {
        let mut regions = HashMap::new();
        let mut default_region = None;
        for assignment in &placement.regions {
            let rid = noftl.region_id(&assignment.region_name).ok_or_else(|| DbError::Storage {
                message: format!(
                    "mounted device has no region '{}' required by the placement configuration",
                    assignment.region_name
                ),
            })?;
            if default_region.is_none() {
                default_region = Some(rid);
            }
            regions.insert(assignment.region_name.clone(), rid);
        }
        let default_region = default_region.ok_or_else(|| DbError::Storage {
            message: "placement configuration has no regions".to_string(),
        })?;
        Ok(NoFtlBackend { noftl, placement: placement.clone(), regions, default_region })
    }

    /// The underlying NoFTL storage manager.
    pub fn noftl(&self) -> &Arc<NoFtl> {
        &self.noftl
    }

    /// The region an object with `name` would be placed in.
    pub fn region_for(&self, name: &str) -> RegionId {
        self.placement
            .region_of(name)
            .and_then(|a| self.regions.get(&a.region_name).copied())
            .unwrap_or(self.default_region)
    }
}

impl StorageBackend for NoFtlBackend {
    fn page_size(&self) -> u32 {
        self.noftl.device().geometry().page_size
    }

    fn metrics(&self) -> Option<&Arc<noftl_obs::MetricsRegistry>> {
        Some(self.noftl.metrics())
    }

    fn create_object(&self, name: &str) -> Result<ObjectId> {
        let region = self.region_for(name);
        self.noftl.create_object(name, region).map_err(Into::into)
    }

    fn lookup_object(&self, name: &str) -> Option<ObjectId> {
        self.noftl.object_id(name)
    }

    fn object_extent(&self, obj: ObjectId) -> Result<u64> {
        self.noftl.object_extent(obj).map_err(Into::into)
    }

    fn checkpoint(&self, at: SimTime) -> Result<SimTime> {
        self.noftl.checkpoint(at).map_err(Into::into)
    }

    fn read_page(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        self.noftl.read(obj, page, at).map_err(Into::into)
    }

    fn read_windowed(
        &self,
        reads: &[(ObjectId, u64)],
        at: SimTime,
        window: usize,
    ) -> Result<(Vec<Vec<u8>>, SimTime)> {
        self.noftl.read_windowed(reads, at, window).map_err(Into::into)
    }

    fn write_page(&self, obj: ObjectId, page: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        self.noftl.write(obj, page, data, at).map_err(Into::into)
    }

    fn write_batch(&self, writes: &[(ObjectId, u64, Vec<u8>)], at: SimTime) -> Result<SimTime> {
        // Fans the batch across the dies of each target region through the
        // storage manager's command queue.
        self.noftl.write_batch(writes, at).map_err(Into::into)
    }

    fn write_windowed(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
        window: usize,
    ) -> Result<SimTime> {
        self.noftl.write_windowed(writes, at, window).map_err(Into::into)
    }

    fn free_page(&self, obj: ObjectId, page: u64) -> Result<()> {
        self.noftl.free_page(obj, page).map_err(Into::into)
    }

    fn io_counts(&self) -> (u64, u64) {
        let s = self.noftl.stats();
        (s.host_reads, s.host_writes)
    }
}

// ---------------------------------------------------------------------
// Block-device backend
// ---------------------------------------------------------------------

struct ObjectExtents {
    /// Base LBA of each allocated extent, indexed by extent number.
    extents: Vec<u64>,
}

struct BlockInner {
    objects: Vec<Option<ObjectExtents>>,
    by_name: HashMap<String, ObjectId>,
    next_free_lba: u64,
    host_reads: u64,
    host_writes: u64,
}

/// Storage backend over a legacy block device (the conventional I/O path
/// the paper argues against).  Objects are laid out in fixed-size extents
/// allocated from a simple bump allocator.
pub struct BlockBackend {
    device: Arc<dyn BlockDevice>,
    extent_pages: u64,
    inner: Mutex<BlockInner>,
}

impl BlockBackend {
    /// Create a backend over `device` using extents of `extent_pages`
    /// pages (e.g. 32 pages = 128 KiB, the paper's example extent size).
    pub fn new(device: Arc<dyn BlockDevice>, extent_pages: u64) -> Self {
        BlockBackend {
            device,
            extent_pages: extent_pages.max(1),
            inner: Mutex::new(BlockInner {
                objects: vec![None],
                by_name: HashMap::new(),
                next_free_lba: 0,
                host_reads: 0,
                host_writes: 0,
            }),
        }
    }

    /// The underlying block device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    fn lba_for(
        &self,
        inner: &mut BlockInner,
        obj: ObjectId,
        page: u64,
        allocate: bool,
    ) -> Result<u64> {
        let extent_pages = self.extent_pages;
        let capacity = self.device.capacity_sectors();
        if inner.objects.get(obj as usize).and_then(|o| o.as_ref()).is_none() {
            return Err(DbError::not_found(format!("object {obj}")));
        }
        let extent_no = (page / extent_pages) as usize;
        loop {
            let allocated =
                inner.objects[obj as usize].as_ref().expect("checked above").extents.len();
            if allocated > extent_no {
                break;
            }
            if !allocate {
                return Err(DbError::InvalidRid {
                    message: format!("object {obj} page {page} has never been written"),
                });
            }
            let base = inner.next_free_lba;
            if base + extent_pages > capacity {
                return Err(DbError::Storage {
                    message: "block device out of space for new extent".to_string(),
                });
            }
            inner.next_free_lba += extent_pages;
            inner.objects[obj as usize].as_mut().expect("checked above").extents.push(base);
        }
        let extents = inner.objects[obj as usize].as_ref().expect("checked above");
        Ok(extents.extents[extent_no] + page % extent_pages)
    }
}

impl StorageBackend for BlockBackend {
    fn page_size(&self) -> u32 {
        self.device.sector_size()
    }

    fn create_object(&self, name: &str) -> Result<ObjectId> {
        let mut inner = self.inner.lock();
        if inner.by_name.contains_key(name) {
            return Err(DbError::AlreadyExists { what: format!("object '{name}'") });
        }
        let id = inner.objects.len() as ObjectId;
        inner.objects.push(Some(ObjectExtents { extents: Vec::new() }));
        inner.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    fn lookup_object(&self, name: &str) -> Option<ObjectId> {
        self.inner.lock().by_name.get(name).copied()
    }

    fn object_extent(&self, obj: ObjectId) -> Result<u64> {
        let inner = self.inner.lock();
        let extents = inner
            .objects
            .get(obj as usize)
            .and_then(|o| o.as_ref())
            .ok_or_else(|| DbError::not_found(format!("object {obj}")))?;
        Ok(extents.extents.len() as u64 * self.extent_pages)
    }

    fn read_page(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        let mut inner = self.inner.lock();
        let lba = self.lba_for(&mut inner, obj, page, false)?;
        inner.host_reads += 1;
        drop(inner);
        self.device.read(lba, at).map_err(Into::into)
    }

    fn write_page(&self, obj: ObjectId, page: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let lba = self.lba_for(&mut inner, obj, page, true)?;
        inner.host_writes += 1;
        drop(inner);
        self.device.write(lba, data, at).map_err(Into::into)
    }

    fn free_page(&self, obj: ObjectId, page: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        match self.lba_for(&mut inner, obj, page, false) {
            Ok(lba) => {
                drop(inner);
                self.device.trim(lba).map_err(Into::into)
            }
            // Freeing a page that was never written is a no-op.
            Err(DbError::InvalidRid { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn io_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.host_reads, inner.host_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{DeviceBuilder, Duration, FlashGeometry};
    use ftl_sim::block_device::MemBlockDevice;
    use noftl_core::NoFtlConfig;

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    fn noftl_backend() -> NoFtlBackend {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig {
            regions: vec![
                noftl_core::RegionAssignment {
                    region_name: "rgHot".into(),
                    objects: vec!["orders".into()],
                    dies: 2,
                    service_class: None,
                },
                noftl_core::RegionAssignment {
                    region_name: "rgCold".into(),
                    objects: vec!["history".into()],
                    dies: 2,
                    service_class: None,
                },
            ],
        };
        NoFtlBackend::new(noftl, &placement).unwrap()
    }

    #[test]
    fn noftl_backend_places_objects_per_configuration() {
        let backend = noftl_backend();
        assert_eq!(backend.page_size(), 4096);
        let orders = backend.create_object("orders").unwrap();
        let history = backend.create_object("history").unwrap();
        let other = backend.create_object("something_else").unwrap();
        let noftl = backend.noftl();
        let rg_hot = noftl.region_id("rgHot").unwrap();
        let rg_cold = noftl.region_id("rgCold").unwrap();
        assert_eq!(noftl.object_stats(orders).unwrap().region, rg_hot);
        assert_eq!(noftl.object_stats(history).unwrap().region, rg_cold);
        // Unknown objects fall back to the first region.
        assert_eq!(noftl.object_stats(other).unwrap().region, rg_hot);
        assert_eq!(backend.region_for("history"), rg_cold);
    }

    #[test]
    fn noftl_backend_read_write_roundtrip() {
        let backend = noftl_backend();
        let obj = backend.create_object("orders").unwrap();
        let done = backend.write_page(obj, 3, &page(0x5C), SimTime::ZERO).unwrap();
        let (data, _) = backend.read_page(obj, 3, done).unwrap();
        assert_eq!(data, page(0x5C));
        assert_eq!(backend.io_counts(), (1, 1));
        backend.free_page(obj, 3).unwrap();
        assert!(backend.read_page(obj, 3, done).is_err());
    }

    #[test]
    fn empty_placement_is_rejected() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig { regions: vec![] };
        assert!(NoFtlBackend::new(noftl, &placement).is_err());
    }

    fn block_backend() -> BlockBackend {
        let device = Arc::new(MemBlockDevice::new(4096, 1024, Duration::from_us(50)));
        BlockBackend::new(device, 8)
    }

    #[test]
    fn block_backend_allocates_extents_on_demand() {
        let backend = block_backend();
        let a = backend.create_object("a").unwrap();
        let b = backend.create_object("b").unwrap();
        assert_ne!(a, b);
        assert!(backend.create_object("a").is_err());
        // Writing page 0 and page 9 of object a allocates two extents.
        backend.write_page(a, 0, &page(1), SimTime::ZERO).unwrap();
        backend.write_page(a, 9, &page(2), SimTime::ZERO).unwrap();
        backend.write_page(b, 0, &page(3), SimTime::ZERO).unwrap();
        assert_eq!(backend.read_page(a, 0, SimTime::ZERO).unwrap().0, page(1));
        assert_eq!(backend.read_page(a, 9, SimTime::ZERO).unwrap().0, page(2));
        assert_eq!(backend.read_page(b, 0, SimTime::ZERO).unwrap().0, page(3));
        // Reading a page of an unallocated extent fails.
        assert!(backend.read_page(b, 100, SimTime::ZERO).is_err());
        assert_eq!(backend.io_counts().1, 3);
        // Unknown object.
        assert!(backend.read_page(99, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn block_backend_free_page_is_tolerant() {
        let backend = block_backend();
        let a = backend.create_object("a").unwrap();
        backend.write_page(a, 0, &page(1), SimTime::ZERO).unwrap();
        backend.free_page(a, 0).unwrap();
        // Never-written page: no-op.
        backend.free_page(a, 500).unwrap();
    }

    #[test]
    fn block_backend_out_of_space() {
        let device = Arc::new(MemBlockDevice::new(4096, 16, Duration::ZERO));
        let backend = BlockBackend::new(device, 8);
        let a = backend.create_object("a").unwrap();
        backend.write_page(a, 0, &page(1), SimTime::ZERO).unwrap();
        backend.write_page(a, 8, &page(1), SimTime::ZERO).unwrap();
        // Third extent exceeds the 16-sector device.
        assert!(backend.write_page(a, 16, &page(1), SimTime::ZERO).is_err());
    }
}
