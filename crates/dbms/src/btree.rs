//! B+-tree indexes stored in 4 KiB pages.
//!
//! Keys are arbitrary byte strings compared lexicographically (the
//! workload builds order-preserving composite keys, see
//! [`crate::value::composite_key`]); leaf payloads are [`RecordId`]s.
//! Leaves are linked for range scans.  Deletion removes entries without
//! rebalancing — sufficient for TPC-C, whose only index deletes are the
//! NEW_ORDER removals performed by the Delivery transaction.

use parking_lot::Mutex;

use flash_sim::SimTime;

use crate::buffer::BufferPool;
use crate::error::DbError;
use crate::heap::RecordId;
use crate::storage::ObjectId;
use crate::Result;
use crate::PAGE_SIZE;

const NONE_PAGE: u64 = u64::MAX;
const HEADER: usize = 1 + 2 + 8;

#[derive(Debug, Clone)]
struct Node {
    leaf: bool,
    /// For leaves: the next leaf in key order (`NONE_PAGE` = last leaf).
    /// For internal nodes: the child covering keys below `keys[0]`.
    extra: u64,
    keys: Vec<Vec<u8>>,
    /// Leaf payloads (parallel to `keys`).
    rids: Vec<RecordId>,
    /// Internal children: `children[i]` covers keys in `[keys[i], keys[i+1])`.
    children: Vec<u64>,
}

impl Node {
    fn new_leaf() -> Self {
        Node {
            leaf: true,
            extra: NONE_PAGE,
            keys: Vec::new(),
            rids: Vec::new(),
            children: Vec::new(),
        }
    }

    fn new_internal(first_child: u64) -> Self {
        Node {
            leaf: false,
            extra: first_child,
            keys: Vec::new(),
            rids: Vec::new(),
            children: Vec::new(),
        }
    }

    fn serialized_size(&self) -> usize {
        let payload = if self.leaf { 10 } else { 8 };
        HEADER + self.keys.iter().map(|k| 2 + k.len() + payload).sum::<usize>()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; PAGE_SIZE];
        out[0] = u8::from(self.leaf);
        out[1..3].copy_from_slice(&(self.keys.len() as u16).to_le_bytes());
        out[3..11].copy_from_slice(&self.extra.to_le_bytes());
        let mut off = HEADER;
        for (i, key) in self.keys.iter().enumerate() {
            out[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            off += 2;
            out[off..off + key.len()].copy_from_slice(key);
            off += key.len();
            if self.leaf {
                out[off..off + 10].copy_from_slice(&self.rids[i].encode());
                off += 10;
            } else {
                out[off..off + 8].copy_from_slice(&self.children[i].to_le_bytes());
                off += 8;
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER {
            return Err(DbError::Corrupted { message: "B+-tree node too short".into() });
        }
        let leaf = buf[0] != 0;
        let n = u16::from_le_bytes(buf[1..3].try_into().expect("2 bytes")) as usize;
        let extra = u64::from_le_bytes(buf[3..11].try_into().expect("8 bytes"));
        let mut node = Node {
            leaf,
            extra,
            keys: Vec::with_capacity(n),
            rids: Vec::new(),
            children: Vec::new(),
        };
        let mut off = HEADER;
        for _ in 0..n {
            if off + 2 > buf.len() {
                return Err(DbError::Corrupted { message: "truncated B+-tree entry".into() });
            }
            let klen = u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes")) as usize;
            off += 2;
            if off + klen > buf.len() {
                return Err(DbError::Corrupted { message: "truncated B+-tree key".into() });
            }
            node.keys.push(buf[off..off + klen].to_vec());
            off += klen;
            if leaf {
                let rid = RecordId::decode(&buf[off..]).ok_or_else(|| DbError::Corrupted {
                    message: "truncated B+-tree rid".into(),
                })?;
                node.rids.push(rid);
                off += 10;
            } else {
                if off + 8 > buf.len() {
                    return Err(DbError::Corrupted { message: "truncated B+-tree child".into() });
                }
                node.children
                    .push(u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes")));
                off += 8;
            }
        }
        Ok(node)
    }

    /// Index of the child to follow for `key` in an internal node.
    /// Returns the page number.
    fn child_for(&self, key: &[u8]) -> u64 {
        let idx = self.keys.partition_point(|k| k.as_slice() <= key);
        if idx == 0 {
            self.extra
        } else {
            self.children[idx - 1]
        }
    }
}

#[derive(Debug)]
struct BTreeInner {
    root: u64,
    page_count: u64,
    entries: u64,
    initialized: bool,
}

/// `(key bytes, record id)` pairs produced by a scan, together with the
/// simulated time at which the scan completed.
pub type ScanResult = (Vec<(Vec<u8>, RecordId)>, SimTime);

/// A B+-tree index over a storage object.
#[derive(Debug)]
pub struct BTree {
    obj: ObjectId,
    inner: Mutex<BTreeInner>,
}

impl BTree {
    /// Create a (lazily initialised) B+-tree over storage object `obj`.
    pub fn new(obj: ObjectId) -> Self {
        BTree {
            obj,
            inner: Mutex::new(BTreeInner {
                root: 0,
                page_count: 1,
                entries: 0,
                initialized: false,
            }),
        }
    }

    /// The storage object backing this index.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// Re-attach to a B+-tree that survived a crash: `extent` is the
    /// object's logical extent on storage.  The root is recovered
    /// structurally — it is the node no other node references (when an
    /// old root survives alongside garbage from uncommitted splits, the
    /// highest-numbered unreferenced node wins, because root pages are
    /// always allocated after their children).  Returns the tree and the
    /// completion time of the structure scan.
    pub fn attach(
        obj: ObjectId,
        pool: &BufferPool,
        extent: u64,
        now: SimTime,
    ) -> Result<(BTree, SimTime)> {
        if extent == 0 {
            return Ok((BTree::new(obj), now));
        }
        let mut t = now;
        let mut present: Vec<(u64, Node)> = Vec::new();
        for page_no in 0..extent {
            let Ok((bytes, t_read)) = pool.read_page(obj, page_no, t) else { continue };
            t = t_read;
            if let Ok(node) = Node::decode(&bytes) {
                present.push((page_no, node));
            }
        }
        let mut referenced = std::collections::HashSet::new();
        for (_, node) in &present {
            if !node.leaf {
                referenced.insert(node.extra);
                referenced.extend(node.children.iter().copied());
            }
        }
        let root =
            present.iter().map(|(p, _)| *p).filter(|p| !referenced.contains(p)).max().unwrap_or(0);
        let entries: u64 =
            present.iter().filter(|(_, n)| n.leaf).map(|(_, n)| n.keys.len() as u64).sum();
        Ok((
            BTree {
                obj,
                inner: Mutex::new(BTreeInner {
                    root,
                    page_count: extent,
                    entries,
                    initialized: true,
                }),
            },
            t,
        ))
    }

    /// Number of entries currently in the index.
    pub fn len(&self) -> u64 {
        self.inner.lock().entries
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages allocated by the index.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().page_count
    }

    fn read_node(&self, pool: &BufferPool, page: u64, now: SimTime) -> Result<(Node, SimTime)> {
        let (bytes, t) = pool.read_page(self.obj, page, now)?;
        Ok((Node::decode(&bytes)?, t))
    }

    fn write_node(
        &self,
        pool: &BufferPool,
        page: u64,
        node: &Node,
        now: SimTime,
    ) -> Result<SimTime> {
        pool.write_page(self.obj, page, &node.encode(), now)
    }

    fn ensure_init(
        &self,
        inner: &mut BTreeInner,
        pool: &BufferPool,
        now: SimTime,
    ) -> Result<SimTime> {
        if inner.initialized {
            return Ok(now);
        }
        let t = self.write_node(pool, 0, &Node::new_leaf(), now)?;
        inner.initialized = true;
        Ok(t)
    }

    /// Insert (or overwrite) `key` → `rid`.  Returns the completion time.
    pub fn insert(
        &self,
        pool: &BufferPool,
        key: &[u8],
        rid: RecordId,
        now: SimTime,
    ) -> Result<SimTime> {
        if key.is_empty() || key.len() + 12 + HEADER > PAGE_SIZE / 4 {
            return Err(DbError::TooLarge { message: format!("index key of {} bytes", key.len()) });
        }
        let mut inner = self.inner.lock();
        let mut t = self.ensure_init(&mut inner, pool, now)?;
        let root = inner.root;
        let (split, t2, inserted) = self.insert_rec(&mut inner, pool, root, key, rid, t)?;
        t = t2;
        if inserted {
            inner.entries += 1;
        }
        if let Some((sep, right_page)) = split {
            // Grow the tree: new root.
            let new_root_page = inner.page_count;
            inner.page_count += 1;
            let mut new_root = Node::new_internal(inner.root);
            new_root.keys.push(sep);
            new_root.children.push(right_page);
            t = self.write_node(pool, new_root_page, &new_root, t)?;
            inner.root = new_root_page;
        }
        Ok(t)
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        inner: &mut BTreeInner,
        pool: &BufferPool,
        page: u64,
        key: &[u8],
        rid: RecordId,
        now: SimTime,
    ) -> Result<(Option<(Vec<u8>, u64)>, SimTime, bool)> {
        let (mut node, mut t) = self.read_node(pool, page, now)?;
        if node.leaf {
            match node.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                Ok(pos) => {
                    // Upsert: overwrite the payload.
                    node.rids[pos] = rid;
                    t = self.write_node(pool, page, &node, t)?;
                    return Ok((None, t, false));
                }
                Err(pos) => {
                    node.keys.insert(pos, key.to_vec());
                    node.rids.insert(pos, rid);
                }
            }
            if node.serialized_size() <= PAGE_SIZE {
                t = self.write_node(pool, page, &node, t)?;
                return Ok((None, t, true));
            }
            // Split the leaf.
            let mid = node.keys.len() / 2;
            let right_page = inner.page_count;
            inner.page_count += 1;
            let mut right = Node::new_leaf();
            right.keys = node.keys.split_off(mid);
            right.rids = node.rids.split_off(mid);
            right.extra = node.extra;
            node.extra = right_page;
            let sep = right.keys[0].clone();
            t = self.write_node(pool, page, &node, t)?;
            t = self.write_node(pool, right_page, &right, t)?;
            return Ok((Some((sep, right_page)), t, true));
        }
        // Internal node: descend.
        let child = node.child_for(key);
        let (split, t2, inserted) = self.insert_rec(inner, pool, child, key, rid, t)?;
        t = t2;
        let Some((sep, new_child)) = split else {
            return Ok((None, t, inserted));
        };
        let pos = node.keys.partition_point(|k| k.as_slice() <= sep.as_slice());
        node.keys.insert(pos, sep);
        node.children.insert(pos, new_child);
        if node.serialized_size() <= PAGE_SIZE {
            t = self.write_node(pool, page, &node, t)?;
            return Ok((None, t, inserted));
        }
        // Split the internal node; the middle key moves up.
        let mid = node.keys.len() / 2;
        let up_key = node.keys[mid].clone();
        let right_page = inner.page_count;
        inner.page_count += 1;
        let mut right = Node::new_internal(node.children[mid]);
        right.keys = node.keys.split_off(mid + 1);
        right.children = node.children.split_off(mid + 1);
        node.keys.pop();
        node.children.pop();
        t = self.write_node(pool, page, &node, t)?;
        t = self.write_node(pool, right_page, &right, t)?;
        Ok((Some((up_key, right_page)), t, inserted))
    }

    /// Exact-match lookup.
    pub fn search(
        &self,
        pool: &BufferPool,
        key: &[u8],
        now: SimTime,
    ) -> Result<(Option<RecordId>, SimTime)> {
        let mut inner = self.inner.lock();
        let mut t = self.ensure_init(&mut inner, pool, now)?;
        let mut page = inner.root;
        loop {
            let (node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            if node.leaf {
                let found = node
                    .keys
                    .binary_search_by(|k| k.as_slice().cmp(key))
                    .ok()
                    .map(|pos| node.rids[pos]);
                return Ok((found, t));
            }
            page = node.child_for(key);
        }
    }

    /// Range scan: all `(key, rid)` pairs with `low <= key < high`, in key
    /// order.
    pub fn range(
        &self,
        pool: &BufferPool,
        low: &[u8],
        high: &[u8],
        now: SimTime,
    ) -> Result<ScanResult> {
        let mut inner = self.inner.lock();
        let mut t = self.ensure_init(&mut inner, pool, now)?;
        let mut page = inner.root;
        // Descend to the leaf that would contain `low`.
        loop {
            let (node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            if node.leaf {
                break;
            }
            page = node.child_for(low);
        }
        let mut out = Vec::new();
        // The leaf chain is a pointer chase (the next leaf is only known
        // after decoding the current one), but leaves are allocated in
        // ascending page order, so the chain climbs through the file.
        // Sequential readahead from the current leaf primes the pool
        // through the backend's windowed read pipeline — the upcoming
        // fetches overlap the region's dies instead of serializing, and
        // a wrong guess merely warms another node of the same tree.
        let readahead = pool.flush_window() as u64;
        loop {
            if readahead > 1 {
                let end = page.saturating_add(readahead).min(inner.page_count);
                let batch: Vec<(ObjectId, u64)> = (page..end).map(|p| (self.obj, p)).collect();
                t = t.max(pool.prefetch(&batch, t)?);
            }
            let (node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            for (i, key) in node.keys.iter().enumerate() {
                if key.as_slice() < low {
                    continue;
                }
                if key.as_slice() >= high {
                    return Ok((out, t));
                }
                out.push((key.clone(), node.rids[i]));
            }
            if node.extra == NONE_PAGE {
                return Ok((out, t));
            }
            page = node.extra;
        }
    }

    /// Bounded range scan: the first `limit` `(key, rid)` pairs with
    /// `key >= low`, in key order — the YCSB-style "short scan" walk.
    /// Same leaf chase as [`range`](Self::range) (including the
    /// windowed-readahead priming), but it stops as soon as `limit` pairs
    /// are collected instead of walking to a high bound.
    pub fn range_from(
        &self,
        pool: &BufferPool,
        low: &[u8],
        limit: usize,
        now: SimTime,
    ) -> Result<ScanResult> {
        let mut inner = self.inner.lock();
        let mut t = self.ensure_init(&mut inner, pool, now)?;
        let mut out = Vec::new();
        if limit == 0 {
            return Ok((out, t));
        }
        let mut page = inner.root;
        loop {
            let (node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            if node.leaf {
                break;
            }
            page = node.child_for(low);
        }
        let readahead = pool.flush_window() as u64;
        loop {
            if readahead > 1 {
                let end = page.saturating_add(readahead).min(inner.page_count);
                let batch: Vec<(ObjectId, u64)> = (page..end).map(|p| (self.obj, p)).collect();
                t = t.max(pool.prefetch(&batch, t)?);
            }
            let (node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            for (i, key) in node.keys.iter().enumerate() {
                if key.as_slice() < low {
                    continue;
                }
                out.push((key.clone(), node.rids[i]));
                if out.len() >= limit {
                    return Ok((out, t));
                }
            }
            if node.extra == NONE_PAGE {
                return Ok((out, t));
            }
            page = node.extra;
        }
    }

    /// Range scan for all keys starting with `prefix`.
    pub fn prefix_scan(
        &self,
        pool: &BufferPool,
        prefix: &[u8],
        now: SimTime,
    ) -> Result<ScanResult> {
        let mut high = prefix.to_vec();
        // Smallest byte string strictly greater than every string with the
        // prefix: increment the last non-0xFF byte and truncate.
        loop {
            match high.last_mut() {
                Some(b) if *b < 0xFF => {
                    *b += 1;
                    break;
                }
                Some(_) => {
                    high.pop();
                }
                None => {
                    // Prefix was all 0xFF (or empty): scan to the end.
                    return self.range(pool, prefix, &vec![0xFFu8; prefix.len() + 9], now);
                }
            }
        }
        self.range(pool, prefix, &high, now)
    }

    /// Remove `key`.  Returns whether the key existed.
    pub fn delete(&self, pool: &BufferPool, key: &[u8], now: SimTime) -> Result<(bool, SimTime)> {
        let mut inner = self.inner.lock();
        let mut t = self.ensure_init(&mut inner, pool, now)?;
        let mut page = inner.root;
        loop {
            let (mut node, t2) = self.read_node(pool, page, t)?;
            t = t2;
            if node.leaf {
                return match node.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(pos) => {
                        node.keys.remove(pos);
                        node.rids.remove(pos);
                        t = self.write_node(pool, page, &node, t)?;
                        inner.entries = inner.entries.saturating_sub(1);
                        Ok((true, t))
                    }
                    Err(_) => Ok((false, t)),
                };
            }
            page = node.child_for(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{NoFtlBackend, StorageBackend};
    use crate::value::composite_key;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn setup(pool_pages: usize) -> (BufferPool, BTree) {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, ["idx".to_string()]);
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
        let obj = backend.create_object("idx").unwrap();
        let pool = BufferPool::new(backend, pool_pages);
        (pool, BTree::new(obj))
    }

    fn rid(n: u64) -> RecordId {
        RecordId::new(n, (n % 100) as u16)
    }

    #[test]
    fn empty_tree_lookups() {
        let (pool, tree) = setup(64);
        assert!(tree.is_empty());
        let (found, _) = tree.search(&pool, &composite_key(&[1]), SimTime::ZERO).unwrap();
        assert_eq!(found, None);
        let (range, _) =
            tree.range(&pool, &composite_key(&[0]), &composite_key(&[100]), SimTime::ZERO).unwrap();
        assert!(range.is_empty());
        let (deleted, _) = tree.delete(&pool, &composite_key(&[1]), SimTime::ZERO).unwrap();
        assert!(!deleted);
    }

    #[test]
    fn insert_search_roundtrip_with_splits() {
        let (pool, tree) = setup(256);
        let mut t = SimTime::ZERO;
        let n = 5_000i64;
        // Insert in a shuffled-ish order to exercise splits on both sides.
        for i in 0..n {
            let k = (i * 2_654_435_761i64).rem_euclid(n);
            t = tree.insert(&pool, &composite_key(&[k]), rid(k as u64), t).unwrap();
        }
        assert_eq!(tree.len(), n as u64);
        assert!(tree.page_count() > 1, "tree must have split");
        for i in 0..n {
            let (found, t2) = tree.search(&pool, &composite_key(&[i]), t).unwrap();
            t = t2;
            assert_eq!(found, Some(rid(i as u64)), "key {i}");
        }
        // Missing keys are not found.
        let (missing, _) = tree.search(&pool, &composite_key(&[n + 10]), t).unwrap();
        assert_eq!(missing, None);
    }

    #[test]
    fn upsert_replaces_payload_without_growing() {
        let (pool, tree) = setup(64);
        let key = composite_key(&[7, 8]);
        let t = tree.insert(&pool, &key, rid(1), SimTime::ZERO).unwrap();
        let t = tree.insert(&pool, &key, rid(2), t).unwrap();
        assert_eq!(tree.len(), 1);
        let (found, _) = tree.search(&pool, &key, t).unwrap();
        assert_eq!(found, Some(rid(2)));
    }

    #[test]
    fn range_scans_return_sorted_results() {
        let (pool, tree) = setup(256);
        let mut t = SimTime::ZERO;
        for i in 0..2_000i64 {
            t = tree.insert(&pool, &composite_key(&[i]), rid(i as u64), t).unwrap();
        }
        let (results, _) =
            tree.range(&pool, &composite_key(&[100]), &composite_key(&[120]), t).unwrap();
        assert_eq!(results.len(), 20);
        let keys: Vec<i64> =
            results.iter().map(|(k, _)| crate::value::decode_key_int(&k[..8])).collect();
        assert_eq!(keys, (100..120).collect::<Vec<_>>());
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn cold_range_scan_prefetches_the_leaf_chain() {
        let (pool, tree) = setup(256);
        let mut t = SimTime::ZERO;
        for i in 0..2_000i64 {
            t = tree.insert(&pool, &composite_key(&[i]), rid(i as u64), t).unwrap();
        }
        t = pool.flush_all(t).unwrap();
        assert!(tree.page_count() > 8, "scan must cross several leaves");

        // A cold pool over the same backing object: the scan's leaf walk
        // must prime itself through the windowed prefetch path and still
        // return exactly the same rows.
        let cold = BufferPool::new(pool.backend().clone(), 256);
        let (warm_rows, _) =
            tree.range(&pool, &composite_key(&[0]), &composite_key(&[2_000]), t).unwrap();
        let (cold_rows, _) =
            tree.range(&cold, &composite_key(&[0]), &composite_key(&[2_000]), t).unwrap();
        assert_eq!(warm_rows.len(), 2_000);
        assert_eq!(warm_rows, cold_rows, "readahead must not change scan results");
        let s = cold.stats();
        assert!(s.prefetched > 0, "cold scan never used the windowed path");
        assert!(
            s.prefetched > s.misses,
            "most leaf fetches should ride the prefetch window (prefetched {}, misses {})",
            s.prefetched,
            s.misses
        );
    }

    #[test]
    fn prefix_scan_composite_keys() {
        let (pool, tree) = setup(256);
        let mut t = SimTime::ZERO;
        // Keys (warehouse, district, order): scan one district.
        for w in 1..=2i64 {
            for d in 1..=3i64 {
                for o in 1..=50i64 {
                    t = tree
                        .insert(
                            &pool,
                            &composite_key(&[w, d, o]),
                            rid((w * 1000 + d * 100 + o) as u64),
                            t,
                        )
                        .unwrap();
                }
            }
        }
        let (results, _) = tree.prefix_scan(&pool, &composite_key(&[1, 2]), t).unwrap();
        assert_eq!(results.len(), 50);
        for (k, _) in &results {
            assert_eq!(crate::value::decode_key_int(&k[0..8]), 1);
            assert_eq!(crate::value::decode_key_int(&k[8..16]), 2);
        }
    }

    #[test]
    fn delete_removes_entries() {
        let (pool, tree) = setup(256);
        let mut t = SimTime::ZERO;
        for i in 0..500i64 {
            t = tree.insert(&pool, &composite_key(&[i]), rid(i as u64), t).unwrap();
        }
        for i in (0..500i64).step_by(2) {
            let (deleted, t2) = tree.delete(&pool, &composite_key(&[i]), t).unwrap();
            t = t2;
            assert!(deleted);
        }
        assert_eq!(tree.len(), 250);
        for i in 0..500i64 {
            let (found, t2) = tree.search(&pool, &composite_key(&[i]), t).unwrap();
            t = t2;
            assert_eq!(found.is_some(), i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn oversized_keys_are_rejected() {
        let (pool, tree) = setup(64);
        let huge = vec![1u8; PAGE_SIZE];
        assert!(tree.insert(&pool, &huge, rid(0), SimTime::ZERO).is_err());
        assert!(tree.insert(&pool, &[], rid(0), SimTime::ZERO).is_err());
    }

    #[test]
    fn works_under_buffer_pressure() {
        // A tiny pool forces every level of the tree to be re-read from
        // flash constantly; correctness must not depend on caching.
        let (pool, tree) = setup(4);
        let mut t = SimTime::ZERO;
        for i in 0..800i64 {
            t = tree.insert(&pool, &composite_key(&[i]), rid(i as u64), t).unwrap();
        }
        for i in 0..800i64 {
            let (found, t2) = tree.search(&pool, &composite_key(&[i]), t).unwrap();
            t = t2;
            assert_eq!(found, Some(rid(i as u64)));
        }
        assert!(pool.stats().evictions > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The tree behaves like a sorted map for arbitrary insert/delete
        /// interleavings.
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec((0i64..300, any::<bool>()), 1..400)) {
            let (pool, tree) = setup(128);
            let mut model = std::collections::BTreeMap::new();
            let mut t = SimTime::ZERO;
            for (i, (k, is_insert)) in ops.iter().enumerate() {
                let key = composite_key(&[*k]);
                if *is_insert {
                    let r = rid(i as u64);
                    t = tree.insert(&pool, &key, r, t).unwrap();
                    model.insert(*k, r);
                } else {
                    let (deleted, t2) = tree.delete(&pool, &key, t).unwrap();
                    t = t2;
                    prop_assert_eq!(deleted, model.remove(k).is_some());
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
            for (k, r) in &model {
                let (found, t2) = tree.search(&pool, &composite_key(&[*k]), t).unwrap();
                t = t2;
                prop_assert_eq!(found, Some(*r));
            }
            // A full range scan returns exactly the model's keys in order.
            let (all, _) = tree.range(&pool, &composite_key(&[-1]), &composite_key(&[301]), t).unwrap();
            let scanned: Vec<i64> = all.iter().map(|(k, _)| crate::value::decode_key_int(&k[..8])).collect();
            let expected: Vec<i64> = model.keys().copied().collect();
            prop_assert_eq!(scanned, expected);
        }
    }
}
