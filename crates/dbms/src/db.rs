//! The `Database` facade used by workloads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use flash_sim::{Duration, SimTime};

use flash_sim::crc32;

use crate::btree::BTree;
use crate::buffer::{BufferPool, BufferStats};
use crate::catalog::{Catalog, IndexDef, TableDef};
use crate::error::DbError;
use crate::heap::{HeapFile, RecordId};
use crate::schema::Schema;
use crate::storage::{ObjectId, StorageBackend};
use crate::txn::{Txn, TxnOutcome};
use crate::value::Record;
use crate::wal::{Wal, WalRecord, WalStats};
use crate::Result;
use crate::PAGE_SIZE;

/// Name of the storage object holding catalog/metadata pages (appears as
/// `DBMS-metadata` in the paper's Figure 2 placement).
pub const METADATA_OBJECT: &str = "DBMS-metadata";
/// Name of the storage object holding the write-ahead log.
pub const LOG_OBJECT: &str = "DBMS-log";
/// Name of the storage object holding versioned catalog snapshots, written
/// at every checkpoint and read back by [`Database::recover`].
pub const CATALOG_OBJECT: &str = "DBMS-catalog";

/// Pages reserved per catalog-snapshot slot.  Snapshots are written
/// ping-pong into slot `seq % 2`, so a crash that tears the in-progress
/// snapshot always leaves the previous one intact.
const CATALOG_SLOT_PAGES: u64 = 64;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseConfig {
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Whether commits force a WAL page.
    pub wal_enabled: bool,
    /// CPU cost charged to a transaction for each record operation.
    pub op_cpu: Duration,
    /// ARIES-lite redo logging: commits append full after-images of the
    /// transaction's dirtied pages before the commit record, the buffer
    /// pool runs **no-steal** (uncommitted data never reaches storage),
    /// and [`Database::recover`] can rebuild all committed state from the
    /// log tail.  Off by default — the paper's space-management
    /// experiments only need the WAL's I/O behaviour.
    pub redo_logging: bool,
    /// Segment-size guard: once the WAL's current segment exceeds this
    /// many pages, the next commit triggers a checkpoint and truncates
    /// the log.
    pub wal_segment_pages: u64,
    /// In-flight page bound of the buffer pool's completion-driven flush
    /// pipeline (see [`crate::buffer::BufferPool::flush_all`]).
    pub flush_window: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            buffer_pages: 2_000,
            wal_enabled: true,
            op_cpu: Duration::from_us(2),
            redo_logging: false,
            wal_segment_pages: 1_024,
            flush_window: crate::buffer::DEFAULT_FLUSH_WINDOW,
        }
    }
}

/// What [`Database::recover`] found and rebuilt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records in the intact log prefix.
    pub wal_records_scanned: u64,
    /// Transactions with a commit record in the log.
    pub committed_txns: u64,
    /// Page after-images replayed by the redo pass.
    pub redo_pages_applied: u64,
    /// Page images skipped because their transaction never committed.
    pub uncommitted_images_skipped: u64,
    /// Sequence number of the catalog snapshot that was restored
    /// (0 = none existed; the catalog starts empty).
    pub catalog_seq: u64,
    /// Tables re-attached from the catalog snapshot.
    pub tables_recovered: u64,
    /// Indexes re-attached from the catalog snapshot.
    pub indexes_recovered: u64,
    /// Tables in the snapshot whose backing object no longer exists
    /// (dropped from the rebuilt catalog).
    pub tables_lost: u64,
}

/// A running database instance.
pub struct Database {
    backend: Arc<dyn StorageBackend>,
    pool: BufferPool,
    catalog: Catalog,
    wal: Option<Wal>,
    metadata_obj: ObjectId,
    catalog_obj: ObjectId,
    catalog_seq: AtomicU64,
    metadata_pages: AtomicU64,
    next_txn: AtomicU64,
    commits: AtomicU64,
    rollbacks: AtomicU64,
    /// Set when a commit's log force fails under redo logging: the pool
    /// then holds effects of a transaction that is neither durable nor
    /// undoable, so all further mutation (which could flush them at a
    /// checkpoint) is refused until the instance is recovered.
    poisoned: std::sync::atomic::AtomicBool,
    config: DatabaseConfig,
}

fn ensure_object(backend: &Arc<dyn StorageBackend>, name: &str) -> Result<ObjectId> {
    match backend.lookup_object(name) {
        Some(obj) => Ok(obj),
        None => backend.create_object(name),
    }
}

impl Database {
    /// Open a database over a storage backend.
    pub fn open(backend: Arc<dyn StorageBackend>, config: DatabaseConfig) -> Result<Self> {
        let metadata_obj = backend.create_object(METADATA_OBJECT)?;
        let catalog_obj = backend.create_object(CATALOG_OBJECT)?;
        let wal = if config.wal_enabled {
            let log_obj = backend.create_object(LOG_OBJECT)?;
            // Without redo logging the log is I/O ballast (the paper's
            // experiments): spilled pages stay volatile, exactly one page
            // write per force, as in the original engine.
            Some(Wal::new(log_obj).with_durable_spill(config.redo_logging))
        } else {
            None
        };
        let no_steal = config.wal_enabled && config.redo_logging;
        let pool = BufferPool::with_policy(Arc::clone(&backend), config.buffer_pages, no_steal)
            .with_flush_window(config.flush_window);
        Ok(Database {
            backend,
            pool,
            catalog: Catalog::new(),
            wal,
            metadata_obj,
            catalog_obj,
            catalog_seq: AtomicU64::new(0),
            metadata_pages: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            commits: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            config,
        })
    }

    /// The storage backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The engine configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Buffer-pool statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// WAL statistics (zeroes when the WAL is disabled).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// Committed transaction count.
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Rolled-back transaction count.
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    fn check_usable(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(DbError::Storage {
                message: "database is poisoned by a failed commit force; \
                          restart and recover before writing again"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Write a small catalog-change record into the metadata object.  This
    /// keeps the `DBMS-metadata` object realistically non-empty (it is one
    /// of the objects the paper's Figure 2 places in its own region).
    fn record_metadata_change(&self, description: &str, now: SimTime) -> Result<()> {
        let page_no = self.metadata_pages.fetch_add(1, Ordering::Relaxed);
        let mut page = vec![0u8; PAGE_SIZE];
        let bytes = description.as_bytes();
        let take = bytes.len().min(PAGE_SIZE - 2);
        page[..2].copy_from_slice(&(take as u16).to_le_bytes());
        page[2..2 + take].copy_from_slice(&bytes[..take]);
        self.pool.write_page(self.metadata_obj, page_no, &page, now)?;
        Ok(())
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema, now: SimTime) -> Result<()> {
        if schema.is_empty() {
            return Err(DbError::SchemaMismatch {
                message: format!("table '{name}' needs columns"),
            });
        }
        let obj = self.backend.create_object(name)?;
        let table = TableDef {
            name: name.to_string(),
            schema,
            heap: HeapFile::new(obj),
            indexes: RwLock::new(HashMap::new()),
        };
        self.catalog.add_table(table)?;
        self.record_metadata_change(&format!("CREATE TABLE {name}"), now)
    }

    /// Create a named index on a table.  Key bytes are provided by the
    /// caller on every insert/delete (see [`Database::insert`]), so the
    /// index definition itself carries no column list.
    pub fn create_index(&self, table: &str, index: &str, now: SimTime) -> Result<()> {
        let table_def = self.catalog.table(table)?;
        let obj = self.backend.create_object(index)?;
        {
            let mut indexes = table_def.indexes.write();
            if indexes.contains_key(index) {
                return Err(DbError::AlreadyExists { what: format!("index '{index}'") });
            }
            indexes.insert(
                index.to_string(),
                Arc::new(IndexDef { name: index.to_string(), tree: crate::btree::BTree::new(obj) }),
            );
        }
        self.record_metadata_change(&format!("CREATE INDEX {index} ON {table}"), now)
    }

    /// Table definition lookup (schema, heap size, ...).
    pub fn table(&self, name: &str) -> Result<Arc<TableDef>> {
        self.catalog.table(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    /// Begin a new transaction at simulated time `now`.
    ///
    /// With [`DatabaseConfig::redo_logging`] enabled the pool starts
    /// capturing the transaction's write set here; like the rest of the
    /// engine's lightweight transaction model, redo logging assumes one
    /// transaction executes at a time (the TPC-C driver's model).
    pub fn begin(&self, now: SimTime) -> Txn {
        if self.config.redo_logging && self.wal.is_some() {
            self.pool.begin_capture();
        }
        Txn::begin(self.next_txn.fetch_add(1, Ordering::Relaxed), now)
    }

    /// Insert a record into a table and register it under the given index
    /// keys (`(index name, key bytes)` pairs).
    pub fn insert(
        &self,
        txn: &mut Txn,
        table: &str,
        record: &Record,
        index_keys: &[(&str, Vec<u8>)],
    ) -> Result<RecordId> {
        self.check_usable()?;
        let table_def = self.catalog.table(table)?;
        let encoded = table_def.schema.encode(record)?;
        let (rid, t) = table_def.heap.insert(&self.pool, &encoded, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        for (index, key) in index_keys {
            let idx = table_def.index(index)?;
            let t = idx.tree.insert(&self.pool, key, rid, txn.now)?;
            txn.advance_to(t);
            txn.writes += 1;
        }
        if let Some(wal) = &self.wal {
            wal.append_note(txn.id, format!("INSERT {table} {}:{}", rid.page, rid.slot));
        }
        Ok(rid)
    }

    /// Fetch a record by its id.
    pub fn get(&self, txn: &mut Txn, table: &str, rid: RecordId) -> Result<Record> {
        let table_def = self.catalog.table(table)?;
        let (bytes, t) = table_def.heap.get(&self.pool, rid, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        table_def.schema.decode(&bytes)
    }

    /// Overwrite a record in place (the schema's fixed layout guarantees
    /// the new version fits).
    pub fn update(&self, txn: &mut Txn, table: &str, rid: RecordId, record: &Record) -> Result<()> {
        self.check_usable()?;
        let table_def = self.catalog.table(table)?;
        let encoded = table_def.schema.encode(record)?;
        let t = table_def.heap.update(&self.pool, rid, &encoded, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        if let Some(wal) = &self.wal {
            wal.append_note(txn.id, format!("UPDATE {table} {}:{}", rid.page, rid.slot));
        }
        Ok(())
    }

    /// Delete a record and remove the given index keys.
    pub fn delete(
        &self,
        txn: &mut Txn,
        table: &str,
        rid: RecordId,
        index_keys: &[(&str, Vec<u8>)],
    ) -> Result<()> {
        self.check_usable()?;
        let table_def = self.catalog.table(table)?;
        let t = table_def.heap.delete(&self.pool, rid, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        for (index, key) in index_keys {
            let idx = table_def.index(index)?;
            let (_, t) = idx.tree.delete(&self.pool, key, txn.now)?;
            txn.advance_to(t);
            txn.writes += 1;
        }
        if let Some(wal) = &self.wal {
            wal.append_note(txn.id, format!("DELETE {table} {}:{}", rid.page, rid.slot));
        }
        Ok(())
    }

    /// Exact-match index lookup, returning the record id if present.
    pub fn index_lookup(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        key: &[u8],
    ) -> Result<Option<RecordId>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (found, t) = idx.tree.search(&self.pool, key, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(found)
    }

    /// Index lookup followed by a heap fetch.
    pub fn index_get(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        key: &[u8],
    ) -> Result<Option<(RecordId, Record)>> {
        match self.index_lookup(txn, table, index, key)? {
            Some(rid) => Ok(Some((rid, self.get(txn, table, rid)?))),
            None => Ok(None),
        }
    }

    /// Range scan over an index: keys in `[low, high)`.
    pub fn index_range(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, RecordId)>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (out, t) = idx.tree.range(&self.pool, low, high, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(out)
    }

    /// Bounded index scan: the first `limit` `(key, rid)` pairs with
    /// `key >= low`, in key order (a YCSB-style short scan).
    pub fn index_scan_from(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        low: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, RecordId)>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (out, t) = idx.tree.range_from(&self.pool, low, limit, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(out)
    }

    /// Prefix scan over an index.
    pub fn index_prefix(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, RecordId)>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (out, t) = idx.tree.prefix_scan(&self.pool, prefix, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(out)
    }

    /// Commit a transaction: with redo logging, append after-images of
    /// every page the transaction dirtied, then the commit record, and
    /// force the log.  The log force is the synchronous part of the
    /// commit and is charged to the transaction's response time.
    ///
    /// Once the current WAL segment exceeds the configured page budget the
    /// commit additionally triggers a checkpoint (flush, catalog snapshot,
    /// backend metadata journal) and truncates the log.
    pub fn commit(&self, txn: &mut Txn) -> Result<TxnOutcome> {
        self.check_usable()?;
        if let Some(wal) = &self.wal {
            if self.config.redo_logging {
                for (obj, page) in self.pool.take_capture() {
                    if let Some(image) = self.pool.page_image(obj, page) {
                        wal.append(&WalRecord::PageImage { txn: txn.id, obj, page, image });
                    }
                }
            }
            wal.append(&WalRecord::Commit { txn: txn.id });
            let t = match wal.force(&*self.backend, txn.now) {
                Ok(t) => t,
                Err(e) => {
                    // The transaction's pool pages are neither durable nor
                    // undoable: refuse further mutation so a checkpoint can
                    // never flush them (atomicity would be lost).
                    if self.config.redo_logging {
                        self.poisoned.store(true, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            };
            txn.advance_to(t);
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        if let Some(wal) = &self.wal {
            let pool_pressure =
                self.config.redo_logging && self.pool.dirty_pages() * 4 >= self.pool.capacity() * 3;
            if wal.needs_truncation(self.config.wal_segment_pages) || pool_pressure {
                let t = self.checkpoint(txn.now)?;
                txn.advance_to(t);
            }
        }
        Ok(TxnOutcome::Committed)
    }

    /// Roll back a transaction.  The engine's workloads pre-validate their
    /// inputs before writing (as the TPC-C NewOrder transaction does for
    /// the 1 % "unused item" case), so rollback only has to be recorded
    /// and the captured write set discarded.
    pub fn rollback(&self, txn: &mut Txn) -> TxnOutcome {
        if let Some(wal) = &self.wal {
            if self.config.redo_logging {
                let _ = self.pool.take_capture();
            }
            wal.append(&WalRecord::Rollback { txn: txn.id });
        }
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        TxnOutcome::RolledBack
    }

    /// Write back every dirty buffered page (checkpoint).
    pub fn flush_all(&self, now: SimTime) -> Result<SimTime> {
        self.pool.flush_all(now)
    }

    /// Snapshot the metrics registry of the storage stack underneath,
    /// when the backend exposes one (the NoFTL stack does; the legacy
    /// block backend reports `None`).  The snapshot spans every layer —
    /// flash device, command queue, storage manager, WAL and buffer
    /// pool — because they all record into the shared registry.
    pub fn metrics_snapshot(&self) -> Option<noftl_obs::MetricsSnapshot> {
        self.backend.metrics().map(|registry| registry.snapshot())
    }

    // ------------------------------------------------------------------
    // Crash consistency: checkpoint & recover
    // ------------------------------------------------------------------

    /// Serialise the catalog (table names, schemas, index names).
    fn encode_catalog(&self, seq: u64) -> Vec<u8> {
        let mut blob = Vec::with_capacity(256);
        blob.extend_from_slice(&seq.to_le_bytes());
        let names = self.catalog.table_names();
        blob.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            let table = self.catalog.table(&name).expect("listed table exists");
            blob.extend_from_slice(&(name.len() as u16).to_le_bytes());
            blob.extend_from_slice(name.as_bytes());
            blob.extend_from_slice(&table.schema.encode_def());
            let mut index_names: Vec<String> = table.indexes.read().keys().cloned().collect();
            index_names.sort();
            blob.extend_from_slice(&(index_names.len() as u32).to_le_bytes());
            for index in index_names {
                blob.extend_from_slice(&(index.len() as u16).to_le_bytes());
                blob.extend_from_slice(index.as_bytes());
            }
        }
        blob
    }

    /// Decode a catalog blob into `(seq, tables)` where each table is
    /// `(name, schema, index names)`.
    #[allow(clippy::type_complexity)]
    fn decode_catalog(blob: &[u8]) -> Option<(u64, Vec<(String, Schema, Vec<String>)>)> {
        let mut pos = 0usize;
        let seq = u64::from_le_bytes(blob.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let count = u32::from_le_bytes(blob.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut tables = Vec::with_capacity(count);
        for _ in 0..count {
            let nlen = u16::from_le_bytes(blob.get(pos..pos + 2)?.try_into().ok()?) as usize;
            pos += 2;
            let name = String::from_utf8(blob.get(pos..pos + nlen)?.to_vec()).ok()?;
            pos += nlen;
            let (schema, used) = Schema::decode_def(blob.get(pos..)?)?;
            pos += used;
            let icount = u32::from_le_bytes(blob.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let mut indexes = Vec::with_capacity(icount);
            for _ in 0..icount {
                let ilen = u16::from_le_bytes(blob.get(pos..pos + 2)?.try_into().ok()?) as usize;
                pos += 2;
                indexes.push(String::from_utf8(blob.get(pos..pos + ilen)?.to_vec()).ok()?);
                pos += ilen;
            }
            tables.push((name, schema, indexes));
        }
        Some((seq, tables))
    }

    /// Write a versioned catalog snapshot into slot `seq % 2` of the
    /// catalog object.  Page 0 of the slot carries a header
    /// (magic, seq, length, CRC); the blob continues on the following
    /// pages.  A torn snapshot fails its CRC on recovery and the previous
    /// slot is used instead.
    fn write_catalog_snapshot(&self, now: SimTime) -> Result<SimTime> {
        let seq = self.catalog_seq.load(Ordering::Relaxed) + 1;
        let blob = self.encode_catalog(seq);
        const HEADER: usize = 24; // magic:4 | seq:8 | len:4 | crc:4 | pad:4
        let capacity = (CATALOG_SLOT_PAGES as usize * PAGE_SIZE) - HEADER;
        if blob.len() > capacity {
            return Err(DbError::TooLarge {
                message: format!("catalog snapshot of {} bytes exceeds slot", blob.len()),
            });
        }
        let base = (seq % 2) * CATALOG_SLOT_PAGES;
        let mut first = vec![0u8; PAGE_SIZE];
        first[0..4].copy_from_slice(&0x4442_4354u32.to_le_bytes()); // "DBCT"
        first[4..12].copy_from_slice(&seq.to_le_bytes());
        first[12..16].copy_from_slice(&(blob.len() as u32).to_le_bytes());
        first[16..20].copy_from_slice(&crc32(&blob).to_le_bytes());
        let head = blob.len().min(PAGE_SIZE - HEADER);
        first[HEADER..HEADER + head].copy_from_slice(&blob[..head]);
        let mut done = self.backend.write_page(self.catalog_obj, base, &first, now)?;
        let mut off = head;
        let mut page_no = base + 1;
        while off < blob.len() {
            let take = (blob.len() - off).min(PAGE_SIZE);
            let mut page = vec![0u8; PAGE_SIZE];
            page[..take].copy_from_slice(&blob[off..off + take]);
            done = done.max(self.backend.write_page(self.catalog_obj, page_no, &page, now)?);
            off += take;
            page_no += 1;
        }
        self.catalog_seq.store(seq, Ordering::Relaxed);
        Ok(done)
    }

    /// Read the newest intact catalog snapshot from storage.
    #[allow(clippy::type_complexity)]
    fn read_catalog_snapshot(
        backend: &Arc<dyn StorageBackend>,
        catalog_obj: ObjectId,
        at: SimTime,
    ) -> (u64, Vec<(String, Schema, Vec<String>)>) {
        const HEADER: usize = 24;
        let mut best: (u64, Vec<(String, Schema, Vec<String>)>) = (0, Vec::new());
        for slot in 0..2u64 {
            let base = slot * CATALOG_SLOT_PAGES;
            let Ok((first, _)) = backend.read_page(catalog_obj, base, at) else { continue };
            if first.len() < HEADER
                || u32::from_le_bytes(first[0..4].try_into().expect("4 bytes")) != 0x4442_4354
            {
                continue;
            }
            let seq = u64::from_le_bytes(first[4..12].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(first[12..16].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(first[16..20].try_into().expect("4 bytes"));
            if len > (CATALOG_SLOT_PAGES as usize * PAGE_SIZE) - HEADER {
                continue;
            }
            let mut blob = first[HEADER..HEADER + len.min(PAGE_SIZE - HEADER)].to_vec();
            let mut page_no = base + 1;
            let mut intact = true;
            while blob.len() < len {
                let Ok((page, _)) = backend.read_page(catalog_obj, page_no, at) else {
                    intact = false;
                    break;
                };
                let take = (len - blob.len()).min(PAGE_SIZE);
                blob.extend_from_slice(&page[..take]);
                page_no += 1;
            }
            if !intact || crc32(&blob) != crc {
                continue;
            }
            let Some((decoded_seq, tables)) = Self::decode_catalog(&blob) else { continue };
            if decoded_seq == seq && seq > best.0 {
                best = (seq, tables);
            }
        }
        best
    }

    /// Take a full checkpoint: flush every dirty page, write a catalog
    /// snapshot, journal the backend's metadata (the NoFTL region
    /// checkpoint) and finally truncate the WAL.  The ordering matters: a
    /// crash at any point leaves either the previous checkpoint plus an
    /// intact log tail, or the new checkpoint — never a state recovery
    /// cannot handle.
    ///
    /// The data-page flush and the WAL force are *both issued at `now`*:
    /// the pending log records belong to already-committed transactions
    /// (commit forces the log, and the pool is no-steal under redo
    /// logging), so forcing them early can only move the log further
    /// ahead of the data — the WAL invariant — while the log and data
    /// objects live on different dies and overlap in simulated time.
    /// This is the group-commit shape of the completion-driven flush
    /// redesign: a checkpoint no longer serialises "all data, then the
    /// log".  Truncation still waits for everything: it only happens
    /// after the flush, the catalog snapshot and the backend checkpoint
    /// are all durable.
    pub fn checkpoint(&self, now: SimTime) -> Result<SimTime> {
        self.check_usable()?;
        let data_done = self.pool.flush_all(now)?;
        let wal_done =
            if let Some(wal) = &self.wal { wal.force(&*self.backend, now)? } else { now };
        let mut done = data_done.max(wal_done);
        done = done.max(self.write_catalog_snapshot(done)?);
        done = done.max(self.backend.checkpoint(done)?);
        if let Some(wal) = &self.wal {
            wal.truncate(&*self.backend)?;
            wal.append(&WalRecord::Checkpoint);
        }
        Ok(done)
    }

    /// Recover a database from a crashed (and remounted) storage backend:
    /// read the newest intact catalog snapshot, scan the WAL's surviving
    /// prefix, **redo** the after-images of committed transactions in LSN
    /// order, re-attach heaps and indexes, and finish with a fresh
    /// checkpoint so the recovered state is immediately durable.
    ///
    /// For the NoFTL stack the backend is obtained via `NoFtl::mount`
    /// (which already discarded torn pages by checksum) wrapped in
    /// `NoFtlBackend::attach`.
    pub fn recover(
        backend: Arc<dyn StorageBackend>,
        config: DatabaseConfig,
        now: SimTime,
    ) -> Result<(Database, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let metadata_obj = ensure_object(&backend, METADATA_OBJECT)?;
        let catalog_obj = ensure_object(&backend, CATALOG_OBJECT)?;
        let log_obj =
            if config.wal_enabled { Some(ensure_object(&backend, LOG_OBJECT)?) } else { None };
        let mut t = now;

        // ---- Redo pass -------------------------------------------------
        let mut max_txn = 0u64;
        if let Some(log_obj) = log_obj {
            let (records, t_scan) = Wal::scan(&*backend, log_obj, t)?;
            t = t.max(t_scan);
            report.wal_records_scanned = records.len() as u64;
            let mut committed = std::collections::HashSet::new();
            for (_, record) in &records {
                match record {
                    WalRecord::Commit { txn } => {
                        committed.insert(*txn);
                        max_txn = max_txn.max(*txn);
                    }
                    WalRecord::Note { txn, .. }
                    | WalRecord::PageImage { txn, .. }
                    | WalRecord::Rollback { txn } => max_txn = max_txn.max(*txn),
                    WalRecord::Checkpoint => {}
                }
            }
            report.committed_txns = committed.len() as u64;
            for (_, record) in &records {
                if let WalRecord::PageImage { txn, obj, page, image } = record {
                    if committed.contains(txn) {
                        let t_w = backend.write_page(*obj, *page, image, t)?;
                        t = t.max(t_w);
                        report.redo_pages_applied += 1;
                    } else {
                        report.uncommitted_images_skipped += 1;
                    }
                }
            }
        }

        // ---- Catalog rebuild ------------------------------------------
        let (catalog_seq, tables) = Self::read_catalog_snapshot(&backend, catalog_obj, t);
        report.catalog_seq = catalog_seq;
        let no_steal = config.wal_enabled && config.redo_logging;
        let pool = BufferPool::with_policy(Arc::clone(&backend), config.buffer_pages, no_steal)
            .with_flush_window(config.flush_window);
        let catalog = Catalog::new();
        for (name, schema, index_names) in tables {
            let Some(heap_obj) = backend.lookup_object(&name) else {
                report.tables_lost += 1;
                continue;
            };
            let extent = backend.object_extent(heap_obj)?;
            let (heap, t_attach) = HeapFile::attach(heap_obj, &pool, extent, t)?;
            t = t.max(t_attach);
            let mut indexes = HashMap::new();
            for index in index_names {
                let Some(index_obj) = backend.lookup_object(&index) else { continue };
                let extent = backend.object_extent(index_obj)?;
                let (tree, t_attach) = BTree::attach(index_obj, &pool, extent, t)?;
                t = t.max(t_attach);
                indexes.insert(index.clone(), Arc::new(IndexDef { name: index, tree }));
                report.indexes_recovered += 1;
            }
            catalog.add_table(TableDef { name, schema, heap, indexes: RwLock::new(indexes) })?;
            report.tables_recovered += 1;
        }

        // ---- Reset the log: free the replayed history and restart the
        // stream at page 0 (page numbers are reused across truncations).
        let wal = match log_obj {
            Some(log_obj) => {
                let old_extent = backend.object_extent(log_obj)?;
                for page_no in 0..old_extent {
                    let _ = backend.free_page(log_obj, page_no);
                }
                Some(Wal::new(log_obj).with_durable_spill(config.redo_logging))
            }
            None => None,
        };
        let metadata_extent = backend.object_extent(metadata_obj)?;

        let db = Database {
            backend,
            pool,
            catalog,
            wal,
            metadata_obj,
            catalog_obj,
            catalog_seq: AtomicU64::new(catalog_seq),
            metadata_pages: AtomicU64::new(metadata_extent),
            next_txn: AtomicU64::new(max_txn + 1),
            commits: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            config,
        };
        // Make the recovered state durable right away.
        db.checkpoint(t)?;
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::storage::NoFtlBackend;
    use crate::value::{composite_key, Value};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

    fn open_db(buffer_pages: usize) -> Database {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, [METADATA_OBJECT.to_string()]);
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
        Database::open(backend, DatabaseConfig { buffer_pages, ..Default::default() }).unwrap()
    }

    fn customer_schema() -> Schema {
        Schema::new(vec![
            ("c_id", ColumnType::Int),
            ("c_w_id", ColumnType::Int),
            ("c_balance", ColumnType::Float),
            ("c_last", ColumnType::Str(16)),
        ])
    }

    fn customer(id: i64, w: i64, balance: f64, last: &str) -> Record {
        vec![Value::Int(id), Value::Int(w), Value::Float(balance), Value::Str(last.into())]
    }

    #[test]
    fn create_insert_lookup_update_delete() {
        let db = open_db(256);
        let t0 = SimTime::ZERO;
        db.create_table("customer", customer_schema(), t0).unwrap();
        db.create_index("customer", "c_idx", t0).unwrap();
        let mut txn = db.begin(t0);
        let key = composite_key(&[1, 42]);
        let rid = db
            .insert(
                &mut txn,
                "customer",
                &customer(42, 1, 10.0, "BARBARBAR"),
                &[("c_idx", key.clone())],
            )
            .unwrap();
        assert!(txn.writes >= 2);
        // Point lookup through the index.
        let (found_rid, rec) = db.index_get(&mut txn, "customer", "c_idx", &key).unwrap().unwrap();
        assert_eq!(found_rid, rid);
        assert_eq!(rec[0], Value::Int(42));
        // Update in place.
        db.update(&mut txn, "customer", rid, &customer(42, 1, 99.5, "BARBARBAR")).unwrap();
        let rec = db.get(&mut txn, "customer", rid).unwrap();
        assert_eq!(rec[2], Value::Float(99.5));
        // Delete removes heap record and index entry.
        db.delete(&mut txn, "customer", rid, &[("c_idx", key.clone())]).unwrap();
        assert!(db.get(&mut txn, "customer", rid).is_err());
        assert!(db.index_lookup(&mut txn, "customer", "c_idx", &key).unwrap().is_none());
        assert_eq!(db.commit(&mut txn).unwrap(), TxnOutcome::Committed);
        assert_eq!(db.commit_count(), 1);
        assert!(txn.elapsed() > Duration::ZERO);
    }

    #[test]
    fn commit_forces_the_log() {
        let db = open_db(128);
        db.create_table("t", customer_schema(), SimTime::ZERO).unwrap();
        let mut txn = db.begin(SimTime::ZERO);
        db.insert(&mut txn, "t", &customer(1, 1, 0.0, "X"), &[]).unwrap();
        let before = txn.now;
        db.commit(&mut txn).unwrap();
        assert!(txn.now > before, "the WAL force must take simulated time");
        assert_eq!(db.wal_stats().forces, 1);
        assert!(db.wal_stats().records >= 2);
        // Without WAL, commit is free.
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::example()).build());
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let backend = Arc::new(
            NoFtlBackend::new(
                noftl,
                &PlacementConfig::traditional(8, [METADATA_OBJECT.to_string()]),
            )
            .unwrap(),
        );
        let db2 = Database::open(
            backend,
            DatabaseConfig { wal_enabled: false, ..DatabaseConfig::default() },
        )
        .unwrap();
        let mut txn2 = db2.begin(SimTime::ZERO);
        let before = txn2.now;
        db2.commit(&mut txn2).unwrap();
        assert_eq!(txn2.now, before);
        assert_eq!(db2.wal_stats().forces, 0);
    }

    #[test]
    fn rollback_is_counted() {
        let db = open_db(128);
        let mut txn = db.begin(SimTime::ZERO);
        assert_eq!(db.rollback(&mut txn), TxnOutcome::RolledBack);
        assert_eq!(db.rollback_count(), 1);
        assert_eq!(db.commit_count(), 0);
    }

    #[test]
    fn index_range_and_prefix_queries() {
        let db = open_db(512);
        let t0 = SimTime::ZERO;
        db.create_table("orderline", customer_schema(), t0).unwrap();
        db.create_index("orderline", "ol_idx", t0).unwrap();
        let mut txn = db.begin(t0);
        for o in 1..=20i64 {
            for line in 1..=5i64 {
                let key = composite_key(&[1, 1, o, line]);
                db.insert(&mut txn, "orderline", &customer(o, line, 1.0, "L"), &[("ol_idx", key)])
                    .unwrap();
            }
        }
        // All lines of order 7.
        let lines =
            db.index_prefix(&mut txn, "orderline", "ol_idx", &composite_key(&[1, 1, 7])).unwrap();
        assert_eq!(lines.len(), 5);
        // Orders 5..10 (exclusive).
        let range = db
            .index_range(
                &mut txn,
                "orderline",
                "ol_idx",
                &composite_key(&[1, 1, 5]),
                &composite_key(&[1, 1, 10]),
            )
            .unwrap();
        assert_eq!(range.len(), 25);
    }

    #[test]
    fn errors_for_unknown_entities() {
        let db = open_db(64);
        let mut txn = db.begin(SimTime::ZERO);
        assert!(db.get(&mut txn, "nope", RecordId::new(0, 0)).is_err());
        assert!(db.insert(&mut txn, "nope", &vec![], &[]).is_err());
        assert!(db.create_index("nope", "i", SimTime::ZERO).is_err());
        db.create_table("t", customer_schema(), SimTime::ZERO).unwrap();
        assert!(db.index_lookup(&mut txn, "t", "missing_idx", b"k").is_err());
        // Duplicate table / index names.
        assert!(db.create_table("t", customer_schema(), SimTime::ZERO).is_err());
        db.create_index("t", "i", SimTime::ZERO).unwrap();
        assert!(db.create_index("t", "i", SimTime::ZERO).is_err());
        // Schema mismatch on insert.
        assert!(db.insert(&mut txn, "t", &vec![Value::Int(1)], &[]).is_err());
        // Empty schema rejected.
        assert!(db.create_table("empty", Schema::new(vec![]), SimTime::ZERO).is_err());
    }

    #[test]
    fn clean_restart_recovers_catalog_and_data() {
        use flash_sim::NandDevice;
        use noftl_core::PlacementConfig;

        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(noftl_core::NoFtl::new(device.clone(), NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, [METADATA_OBJECT.to_string()]);
        let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
        let config = DatabaseConfig { buffer_pages: 64, redo_logging: true, ..Default::default() };
        let db = Database::open(backend, config).unwrap();
        let t0 = SimTime::ZERO;
        db.create_table("customer", customer_schema(), t0).unwrap();
        db.create_index("customer", "c_idx", t0).unwrap();
        let t = db.checkpoint(t0).unwrap();
        // A committed transaction after the checkpoint lives only in the
        // WAL tail (no-steal keeps its pages out of storage).
        let mut txn = db.begin(t);
        let key = composite_key(&[1, 7]);
        db.insert(&mut txn, "customer", &customer(7, 1, 12.5, "TAIL"), &[("c_idx", key.clone())])
            .unwrap();
        db.commit(&mut txn).unwrap();
        // An uncommitted transaction must NOT survive.
        let mut ghost = db.begin(txn.now);
        db.insert(
            &mut ghost,
            "customer",
            &customer(8, 1, 0.0, "GHOST"),
            &[("c_idx", composite_key(&[1, 8]))],
        )
        .unwrap();

        // "Reboot": rebuild the device from its snapshot and remount.
        let snap = device.snapshot();
        let device2 = Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap());
        let (noftl2, mount) =
            noftl_core::NoFtl::mount(device2, NoFtlConfig::default(), txn.now).unwrap();
        let backend2 = Arc::new(NoFtlBackend::attach(Arc::new(noftl2), &placement).unwrap());
        let (db2, report) = Database::recover(backend2, config, mount.completed_at).unwrap();
        assert_eq!(report.tables_recovered, 1);
        assert_eq!(report.indexes_recovered, 1);
        assert!(report.committed_txns >= 1);
        assert!(report.redo_pages_applied >= 2, "heap + index images replayed");
        assert!(report.uncommitted_images_skipped == 0, "ghost never reached the log tail images");
        // The committed row is back, the ghost is gone.
        let mut txn2 = db2.begin(mount.completed_at);
        let (_, rec) = db2.index_get(&mut txn2, "customer", "c_idx", &key).unwrap().unwrap();
        assert_eq!(rec[0], Value::Int(7));
        assert_eq!(rec[3], Value::Str("TAIL".into()));
        assert!(db2
            .index_lookup(&mut txn2, "customer", "c_idx", &composite_key(&[1, 8]))
            .unwrap()
            .is_none());
        // The recovered database accepts new transactions.
        let mut txn3 = db2.begin(txn2.now);
        db2.insert(
            &mut txn3,
            "customer",
            &customer(9, 1, 1.0, "NEW"),
            &[("c_idx", composite_key(&[1, 9]))],
        )
        .unwrap();
        db2.commit(&mut txn3).unwrap();
        assert!(txn3.id > txn.id, "txn ids continue past the crashed instance");
    }

    #[test]
    fn flush_all_persists_through_restart_of_the_pool() {
        let db = open_db(64);
        let t0 = SimTime::ZERO;
        db.create_table("t", customer_schema(), t0).unwrap();
        let mut txn = db.begin(t0);
        let rid = db.insert(&mut txn, "t", &customer(1, 2, 3.0, "A"), &[]).unwrap();
        let done = db.flush_all(txn.now).unwrap();
        assert!(done >= txn.now);
        // Data readable via a fresh transaction.
        let mut txn2 = db.begin(done);
        assert_eq!(db.get(&mut txn2, "t", rid).unwrap()[0], Value::Int(1));
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        assert!(db.table("t").is_ok());
        assert!(db.buffer_stats().logical_writes > 0);
    }
}
