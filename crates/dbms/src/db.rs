//! The `Database` facade used by workloads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use flash_sim::{Duration, SimTime};

use crate::buffer::{BufferPool, BufferStats};
use crate::catalog::{Catalog, IndexDef, TableDef};
use crate::error::DbError;
use crate::heap::{HeapFile, RecordId};
use crate::schema::Schema;
use crate::storage::{ObjectId, StorageBackend};
use crate::txn::{Txn, TxnOutcome};
use crate::value::Record;
use crate::wal::{Wal, WalStats};
use crate::Result;
use crate::PAGE_SIZE;

/// Name of the storage object holding catalog/metadata pages (appears as
/// `DBMS-metadata` in the paper's Figure 2 placement).
pub const METADATA_OBJECT: &str = "DBMS-metadata";
/// Name of the storage object holding the write-ahead log.
pub const LOG_OBJECT: &str = "DBMS-log";

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseConfig {
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Whether commits force a WAL page.
    pub wal_enabled: bool,
    /// CPU cost charged to a transaction for each record operation.
    pub op_cpu: Duration,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig { buffer_pages: 2_000, wal_enabled: true, op_cpu: Duration::from_us(2) }
    }
}

/// A running database instance.
pub struct Database {
    backend: Arc<dyn StorageBackend>,
    pool: BufferPool,
    catalog: Catalog,
    wal: Option<Wal>,
    metadata_obj: ObjectId,
    metadata_pages: AtomicU64,
    next_txn: AtomicU64,
    commits: AtomicU64,
    rollbacks: AtomicU64,
    config: DatabaseConfig,
}

impl Database {
    /// Open a database over a storage backend.
    pub fn open(backend: Arc<dyn StorageBackend>, config: DatabaseConfig) -> Result<Self> {
        let metadata_obj = backend.create_object(METADATA_OBJECT)?;
        let wal = if config.wal_enabled {
            let log_obj = backend.create_object(LOG_OBJECT)?;
            Some(Wal::new(log_obj))
        } else {
            None
        };
        let pool = BufferPool::new(Arc::clone(&backend), config.buffer_pages);
        Ok(Database {
            backend,
            pool,
            catalog: Catalog::new(),
            wal,
            metadata_obj,
            metadata_pages: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            commits: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            config,
        })
    }

    /// The storage backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The engine configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Buffer-pool statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// WAL statistics (zeroes when the WAL is disabled).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// Committed transaction count.
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Rolled-back transaction count.
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Write a small catalog-change record into the metadata object.  This
    /// keeps the `DBMS-metadata` object realistically non-empty (it is one
    /// of the objects the paper's Figure 2 places in its own region).
    fn record_metadata_change(&self, description: &str, now: SimTime) -> Result<()> {
        let page_no = self.metadata_pages.fetch_add(1, Ordering::Relaxed);
        let mut page = vec![0u8; PAGE_SIZE];
        let bytes = description.as_bytes();
        let take = bytes.len().min(PAGE_SIZE - 2);
        page[..2].copy_from_slice(&(take as u16).to_le_bytes());
        page[2..2 + take].copy_from_slice(&bytes[..take]);
        self.pool.write_page(self.metadata_obj, page_no, &page, now)?;
        Ok(())
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema, now: SimTime) -> Result<()> {
        if schema.is_empty() {
            return Err(DbError::SchemaMismatch {
                message: format!("table '{name}' needs columns"),
            });
        }
        let obj = self.backend.create_object(name)?;
        let table = TableDef {
            name: name.to_string(),
            schema,
            heap: HeapFile::new(obj),
            indexes: RwLock::new(HashMap::new()),
        };
        self.catalog.add_table(table)?;
        self.record_metadata_change(&format!("CREATE TABLE {name}"), now)
    }

    /// Create a named index on a table.  Key bytes are provided by the
    /// caller on every insert/delete (see [`Database::insert`]), so the
    /// index definition itself carries no column list.
    pub fn create_index(&self, table: &str, index: &str, now: SimTime) -> Result<()> {
        let table_def = self.catalog.table(table)?;
        let obj = self.backend.create_object(index)?;
        {
            let mut indexes = table_def.indexes.write();
            if indexes.contains_key(index) {
                return Err(DbError::AlreadyExists { what: format!("index '{index}'") });
            }
            indexes.insert(
                index.to_string(),
                Arc::new(IndexDef { name: index.to_string(), tree: crate::btree::BTree::new(obj) }),
            );
        }
        self.record_metadata_change(&format!("CREATE INDEX {index} ON {table}"), now)
    }

    /// Table definition lookup (schema, heap size, ...).
    pub fn table(&self, name: &str) -> Result<Arc<TableDef>> {
        self.catalog.table(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    /// Begin a new transaction at simulated time `now`.
    pub fn begin(&self, now: SimTime) -> Txn {
        Txn::begin(self.next_txn.fetch_add(1, Ordering::Relaxed), now)
    }

    /// Insert a record into a table and register it under the given index
    /// keys (`(index name, key bytes)` pairs).
    pub fn insert(
        &self,
        txn: &mut Txn,
        table: &str,
        record: &Record,
        index_keys: &[(&str, Vec<u8>)],
    ) -> Result<RecordId> {
        let table_def = self.catalog.table(table)?;
        let encoded = table_def.schema.encode(record)?;
        let (rid, t) = table_def.heap.insert(&self.pool, &encoded, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        for (index, key) in index_keys {
            let idx = table_def.index(index)?;
            let t = idx.tree.insert(&self.pool, key, rid, txn.now)?;
            txn.advance_to(t);
            txn.writes += 1;
        }
        if let Some(wal) = &self.wal {
            wal.append(format!("INSERT {table} {}:{}", rid.page, rid.slot).as_bytes());
        }
        Ok(rid)
    }

    /// Fetch a record by its id.
    pub fn get(&self, txn: &mut Txn, table: &str, rid: RecordId) -> Result<Record> {
        let table_def = self.catalog.table(table)?;
        let (bytes, t) = table_def.heap.get(&self.pool, rid, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        table_def.schema.decode(&bytes)
    }

    /// Overwrite a record in place (the schema's fixed layout guarantees
    /// the new version fits).
    pub fn update(&self, txn: &mut Txn, table: &str, rid: RecordId, record: &Record) -> Result<()> {
        let table_def = self.catalog.table(table)?;
        let encoded = table_def.schema.encode(record)?;
        let t = table_def.heap.update(&self.pool, rid, &encoded, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        if let Some(wal) = &self.wal {
            wal.append(format!("UPDATE {table} {}:{}", rid.page, rid.slot).as_bytes());
        }
        Ok(())
    }

    /// Delete a record and remove the given index keys.
    pub fn delete(
        &self,
        txn: &mut Txn,
        table: &str,
        rid: RecordId,
        index_keys: &[(&str, Vec<u8>)],
    ) -> Result<()> {
        let table_def = self.catalog.table(table)?;
        let t = table_def.heap.delete(&self.pool, rid, txn.now)?;
        txn.advance_to(t);
        txn.writes += 1;
        txn.add_cpu(self.config.op_cpu);
        for (index, key) in index_keys {
            let idx = table_def.index(index)?;
            let (_, t) = idx.tree.delete(&self.pool, key, txn.now)?;
            txn.advance_to(t);
            txn.writes += 1;
        }
        if let Some(wal) = &self.wal {
            wal.append(format!("DELETE {table} {}:{}", rid.page, rid.slot).as_bytes());
        }
        Ok(())
    }

    /// Exact-match index lookup, returning the record id if present.
    pub fn index_lookup(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        key: &[u8],
    ) -> Result<Option<RecordId>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (found, t) = idx.tree.search(&self.pool, key, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(found)
    }

    /// Index lookup followed by a heap fetch.
    pub fn index_get(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        key: &[u8],
    ) -> Result<Option<(RecordId, Record)>> {
        match self.index_lookup(txn, table, index, key)? {
            Some(rid) => Ok(Some((rid, self.get(txn, table, rid)?))),
            None => Ok(None),
        }
    }

    /// Range scan over an index: keys in `[low, high)`.
    pub fn index_range(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, RecordId)>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (out, t) = idx.tree.range(&self.pool, low, high, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(out)
    }

    /// Prefix scan over an index.
    pub fn index_prefix(
        &self,
        txn: &mut Txn,
        table: &str,
        index: &str,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, RecordId)>> {
        let table_def = self.catalog.table(table)?;
        let idx = table_def.index(index)?;
        let (out, t) = idx.tree.prefix_scan(&self.pool, prefix, txn.now)?;
        txn.advance_to(t);
        txn.reads += 1;
        txn.add_cpu(self.config.op_cpu);
        Ok(out)
    }

    /// Commit a transaction: append a commit record and force the log.
    /// The log force is the synchronous part of the commit and is charged
    /// to the transaction's response time.
    pub fn commit(&self, txn: &mut Txn) -> Result<TxnOutcome> {
        if let Some(wal) = &self.wal {
            wal.append(format!("COMMIT {}", txn.id).as_bytes());
            let t = wal.force(&*self.backend, txn.now)?;
            txn.advance_to(t);
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(TxnOutcome::Committed)
    }

    /// Roll back a transaction.  The engine's workloads pre-validate their
    /// inputs before writing (as the TPC-C NewOrder transaction does for
    /// the 1 % "unused item" case), so rollback only has to be recorded.
    pub fn rollback(&self, txn: &mut Txn) -> TxnOutcome {
        if let Some(wal) = &self.wal {
            wal.append(format!("ROLLBACK {}", txn.id).as_bytes());
        }
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        TxnOutcome::RolledBack
    }

    /// Write back every dirty buffered page (checkpoint).
    pub fn flush_all(&self, now: SimTime) -> Result<SimTime> {
        self.pool.flush_all(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::storage::NoFtlBackend;
    use crate::value::{composite_key, Value};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

    fn open_db(buffer_pages: usize) -> Database {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let placement = PlacementConfig::traditional(8, [METADATA_OBJECT.to_string()]);
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
        Database::open(backend, DatabaseConfig { buffer_pages, ..Default::default() }).unwrap()
    }

    fn customer_schema() -> Schema {
        Schema::new(vec![
            ("c_id", ColumnType::Int),
            ("c_w_id", ColumnType::Int),
            ("c_balance", ColumnType::Float),
            ("c_last", ColumnType::Str(16)),
        ])
    }

    fn customer(id: i64, w: i64, balance: f64, last: &str) -> Record {
        vec![Value::Int(id), Value::Int(w), Value::Float(balance), Value::Str(last.into())]
    }

    #[test]
    fn create_insert_lookup_update_delete() {
        let db = open_db(256);
        let t0 = SimTime::ZERO;
        db.create_table("customer", customer_schema(), t0).unwrap();
        db.create_index("customer", "c_idx", t0).unwrap();
        let mut txn = db.begin(t0);
        let key = composite_key(&[1, 42]);
        let rid = db
            .insert(
                &mut txn,
                "customer",
                &customer(42, 1, 10.0, "BARBARBAR"),
                &[("c_idx", key.clone())],
            )
            .unwrap();
        assert!(txn.writes >= 2);
        // Point lookup through the index.
        let (found_rid, rec) = db.index_get(&mut txn, "customer", "c_idx", &key).unwrap().unwrap();
        assert_eq!(found_rid, rid);
        assert_eq!(rec[0], Value::Int(42));
        // Update in place.
        db.update(&mut txn, "customer", rid, &customer(42, 1, 99.5, "BARBARBAR")).unwrap();
        let rec = db.get(&mut txn, "customer", rid).unwrap();
        assert_eq!(rec[2], Value::Float(99.5));
        // Delete removes heap record and index entry.
        db.delete(&mut txn, "customer", rid, &[("c_idx", key.clone())]).unwrap();
        assert!(db.get(&mut txn, "customer", rid).is_err());
        assert!(db.index_lookup(&mut txn, "customer", "c_idx", &key).unwrap().is_none());
        assert_eq!(db.commit(&mut txn).unwrap(), TxnOutcome::Committed);
        assert_eq!(db.commit_count(), 1);
        assert!(txn.elapsed() > Duration::ZERO);
    }

    #[test]
    fn commit_forces_the_log() {
        let db = open_db(128);
        db.create_table("t", customer_schema(), SimTime::ZERO).unwrap();
        let mut txn = db.begin(SimTime::ZERO);
        db.insert(&mut txn, "t", &customer(1, 1, 0.0, "X"), &[]).unwrap();
        let before = txn.now;
        db.commit(&mut txn).unwrap();
        assert!(txn.now > before, "the WAL force must take simulated time");
        assert_eq!(db.wal_stats().forces, 1);
        assert!(db.wal_stats().records >= 2);
        // Without WAL, commit is free.
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::example()).build());
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let backend = Arc::new(
            NoFtlBackend::new(
                noftl,
                &PlacementConfig::traditional(8, [METADATA_OBJECT.to_string()]),
            )
            .unwrap(),
        );
        let db2 = Database::open(
            backend,
            DatabaseConfig { wal_enabled: false, ..DatabaseConfig::default() },
        )
        .unwrap();
        let mut txn2 = db2.begin(SimTime::ZERO);
        let before = txn2.now;
        db2.commit(&mut txn2).unwrap();
        assert_eq!(txn2.now, before);
        assert_eq!(db2.wal_stats().forces, 0);
    }

    #[test]
    fn rollback_is_counted() {
        let db = open_db(128);
        let mut txn = db.begin(SimTime::ZERO);
        assert_eq!(db.rollback(&mut txn), TxnOutcome::RolledBack);
        assert_eq!(db.rollback_count(), 1);
        assert_eq!(db.commit_count(), 0);
    }

    #[test]
    fn index_range_and_prefix_queries() {
        let db = open_db(512);
        let t0 = SimTime::ZERO;
        db.create_table("orderline", customer_schema(), t0).unwrap();
        db.create_index("orderline", "ol_idx", t0).unwrap();
        let mut txn = db.begin(t0);
        for o in 1..=20i64 {
            for line in 1..=5i64 {
                let key = composite_key(&[1, 1, o, line]);
                db.insert(&mut txn, "orderline", &customer(o, line, 1.0, "L"), &[("ol_idx", key)])
                    .unwrap();
            }
        }
        // All lines of order 7.
        let lines =
            db.index_prefix(&mut txn, "orderline", "ol_idx", &composite_key(&[1, 1, 7])).unwrap();
        assert_eq!(lines.len(), 5);
        // Orders 5..10 (exclusive).
        let range = db
            .index_range(
                &mut txn,
                "orderline",
                "ol_idx",
                &composite_key(&[1, 1, 5]),
                &composite_key(&[1, 1, 10]),
            )
            .unwrap();
        assert_eq!(range.len(), 25);
    }

    #[test]
    fn errors_for_unknown_entities() {
        let db = open_db(64);
        let mut txn = db.begin(SimTime::ZERO);
        assert!(db.get(&mut txn, "nope", RecordId::new(0, 0)).is_err());
        assert!(db.insert(&mut txn, "nope", &vec![], &[]).is_err());
        assert!(db.create_index("nope", "i", SimTime::ZERO).is_err());
        db.create_table("t", customer_schema(), SimTime::ZERO).unwrap();
        assert!(db.index_lookup(&mut txn, "t", "missing_idx", b"k").is_err());
        // Duplicate table / index names.
        assert!(db.create_table("t", customer_schema(), SimTime::ZERO).is_err());
        db.create_index("t", "i", SimTime::ZERO).unwrap();
        assert!(db.create_index("t", "i", SimTime::ZERO).is_err());
        // Schema mismatch on insert.
        assert!(db.insert(&mut txn, "t", &vec![Value::Int(1)], &[]).is_err());
        // Empty schema rejected.
        assert!(db.create_table("empty", Schema::new(vec![]), SimTime::ZERO).is_err());
    }

    #[test]
    fn flush_all_persists_through_restart_of_the_pool() {
        let db = open_db(64);
        let t0 = SimTime::ZERO;
        db.create_table("t", customer_schema(), t0).unwrap();
        let mut txn = db.begin(t0);
        let rid = db.insert(&mut txn, "t", &customer(1, 2, 3.0, "A"), &[]).unwrap();
        let done = db.flush_all(txn.now).unwrap();
        assert!(done >= txn.now);
        // Data readable via a fresh transaction.
        let mut txn2 = db.begin(done);
        assert_eq!(db.get(&mut txn2, "t", rid).unwrap()[0], Value::Int(1));
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        assert!(db.table("t").is_ok());
        assert!(db.buffer_stats().logical_writes > 0);
    }
}
