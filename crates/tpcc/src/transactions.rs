//! The five TPC-C transactions.
//!
//! All transaction logic runs against the `dbms-engine` API; every index
//! access, heap fetch and update turns into buffer-pool traffic and —
//! on misses, evictions and commits — into native flash commands, which is
//! what the paper's evaluation measures.

use rand::rngs::StdRng;

use dbms_engine::txn::TxnOutcome;
use dbms_engine::value::Value;
use dbms_engine::{Database, Record, RecordId, Txn};

use crate::loader::ScaleConfig;
use crate::random;
use crate::schema;

// Column positions used by the transactions (see `schema.rs`).
const W_TAX: usize = 7;
const W_YTD: usize = 8;
const D_TAX: usize = 8;
const D_YTD: usize = 9;
const D_NEXT_O_ID: usize = 10;
const C_CREDIT: usize = 13;
const C_DISCOUNT: usize = 15;
const C_BALANCE: usize = 16;
const C_YTD_PAYMENT: usize = 17;
const C_PAYMENT_CNT: usize = 18;
const C_DELIVERY_CNT: usize = 19;
const C_DATA: usize = 20;
const O_C_ID: usize = 3;
const O_CARRIER_ID: usize = 5;
const OL_I_ID: usize = 4;
const OL_DELIVERY_D: usize = 6;
const OL_AMOUNT: usize = 8;
const S_QUANTITY: usize = 2;
const S_YTD: usize = 13;
const S_ORDER_CNT: usize = 14;
const S_REMOTE_CNT: usize = 15;
const I_PRICE: usize = 3;

fn int(rec: &Record, idx: usize) -> i64 {
    rec[idx].as_int().unwrap_or(0)
}

fn float(rec: &Record, idx: usize) -> f64 {
    rec[idx].as_float().unwrap_or(0.0)
}

/// Select a customer either by id (40 %) or by last name (60 %), as the
/// spec prescribes for Payment and OrderStatus.  Returns the record id and
/// the customer row.
fn select_customer(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
    d_id: i64,
) -> dbms_engine::Result<Option<(RecordId, Record)>> {
    if random::uniform(rng, 1, 100) <= 60 {
        // By last name: take the middle customer with that name.
        let last = random::random_last_name(rng);
        let matches = db.index_prefix(
            txn,
            "CUSTOMER",
            "C_NAME_IDX",
            &schema::customer_name_prefix(w_id, d_id, &last),
        )?;
        if matches.is_empty() {
            // Fall back to a by-id lookup (small scales do not have every name).
            let c_id = random::nurand_customer_id(rng, scale.customers_per_district);
            return db.index_get(txn, "CUSTOMER", "C_IDX", &schema::customer_key(w_id, d_id, c_id));
        }
        let (_, rid) = matches[matches.len() / 2];
        let rec = db.get(txn, "CUSTOMER", rid)?;
        Ok(Some((rid, rec)))
    } else {
        let c_id = random::nurand_customer_id(rng, scale.customers_per_district);
        db.index_get(txn, "CUSTOMER", "C_IDX", &schema::customer_key(w_id, d_id, c_id))
    }
}

/// The NewOrder transaction (TPC-C §2.4).  Returns `RolledBack` for the
/// ~1 % of orders that reference an unused item number.
pub fn new_order(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
) -> dbms_engine::Result<TxnOutcome> {
    let d_id = random::uniform(rng, 1, scale.districts_per_warehouse);
    let c_id = random::nurand_customer_id(rng, scale.customers_per_district);
    let ol_cnt = random::uniform(rng, 5, 15);
    let rollback = random::uniform(rng, 1, 100) == 1;

    // Generate the order lines up front so the "unused item" case can be
    // detected before any write happens (the engine's rollback model).
    let mut lines = Vec::with_capacity(ol_cnt as usize);
    for line in 1..=ol_cnt {
        let i_id = if rollback && line == ol_cnt {
            scale.items + 1 // guaranteed unused
        } else {
            random::nurand_item_id(rng, scale.items)
        };
        let quantity = random::uniform(rng, 1, 10);
        lines.push((line, i_id, quantity));
    }

    // Warehouse, district and customer reads.
    let (_, warehouse) = db
        .index_get(txn, "WAREHOUSE", "W_IDX", &schema::warehouse_key(w_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("warehouse {w_id}")))?;
    let w_tax = float(&warehouse, W_TAX);
    let (d_rid, mut district) = db
        .index_get(txn, "DISTRICT", "D_IDX", &schema::district_key(w_id, d_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("district {w_id}-{d_id}")))?;
    let d_tax = float(&district, D_TAX);
    let o_id = int(&district, D_NEXT_O_ID);
    let (_, customer) = db
        .index_get(txn, "CUSTOMER", "C_IDX", &schema::customer_key(w_id, d_id, c_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("customer {c_id}")))?;
    let c_discount = float(&customer, C_DISCOUNT);

    // Validate the items; an unused item number aborts the transaction.
    let mut item_prices = Vec::with_capacity(lines.len());
    for (_, i_id, _) in &lines {
        match db.index_get(txn, "ITEM", "I_IDX", &schema::item_key(*i_id))? {
            Some((_, item)) => item_prices.push(float(&item, I_PRICE)),
            None => {
                return Ok(db.rollback(txn));
            }
        }
    }

    // All inputs valid: perform the writes.
    district[D_NEXT_O_ID] = Value::Int(o_id + 1);
    db.update(txn, "DISTRICT", d_rid, &district)?;

    let order: Record = vec![
        Value::Int(o_id),
        Value::Int(d_id),
        Value::Int(w_id),
        Value::Int(c_id),
        Value::Str("20160315120000".into()),
        Value::Int(0),
        Value::Int(ol_cnt),
        Value::Int(1),
    ];
    db.insert(
        txn,
        "ORDER",
        &order,
        &[
            ("O_IDX", schema::order_key(w_id, d_id, o_id)),
            ("O_CUST_IDX", schema::order_customer_key(w_id, d_id, c_id, o_id)),
        ],
    )?;
    let no: Record = vec![Value::Int(o_id), Value::Int(d_id), Value::Int(w_id)];
    db.insert(txn, "NEW_ORDER", &no, &[("NO_IDX", schema::new_order_key(w_id, d_id, o_id))])?;

    let mut total = 0.0;
    for ((line, i_id, quantity), price) in lines.iter().zip(item_prices.iter()) {
        let (s_rid, mut stock) = db
            .index_get(txn, "STOCK", "S_IDX", &schema::stock_key(w_id, *i_id))?
            .ok_or_else(|| dbms_engine::DbError::not_found(format!("stock {w_id}/{i_id}")))?;
        let mut s_quantity = int(&stock, S_QUANTITY);
        if s_quantity >= quantity + 10 {
            s_quantity -= quantity;
        } else {
            s_quantity = s_quantity - quantity + 91;
        }
        stock[S_QUANTITY] = Value::Int(s_quantity);
        stock[S_YTD] = Value::Float(float(&stock, S_YTD) + *quantity as f64);
        stock[S_ORDER_CNT] = Value::Int(int(&stock, S_ORDER_CNT) + 1);
        stock[S_REMOTE_CNT] = Value::Int(int(&stock, S_REMOTE_CNT));
        db.update(txn, "STOCK", s_rid, &stock)?;

        let amount = *quantity as f64 * price * (1.0 + w_tax + d_tax) * (1.0 - c_discount);
        total += amount;
        let ol: Record = vec![
            Value::Int(o_id),
            Value::Int(d_id),
            Value::Int(w_id),
            Value::Int(*line),
            Value::Int(*i_id),
            Value::Int(w_id),
            Value::Str(String::new()),
            Value::Int(*quantity),
            Value::Float(amount),
            Value::Str("distinfo-distinfo-dist".into()),
        ];
        db.insert(
            txn,
            "ORDERLINE",
            &ol,
            &[("OL_IDX", schema::orderline_key(w_id, d_id, o_id, *line))],
        )?;
    }
    debug_assert!(total >= 0.0);
    db.commit(txn)
}

/// The Payment transaction (TPC-C §2.5).
pub fn payment(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
) -> dbms_engine::Result<TxnOutcome> {
    let d_id = random::uniform(rng, 1, scale.districts_per_warehouse);
    let amount = random::uniform(rng, 100, 500_000) as f64 / 100.0;
    // 85 % of payments are for the home warehouse/district; with a single
    // warehouse the remote case degenerates to the home one.
    let (c_w_id, c_d_id) = if random::uniform(rng, 1, 100) <= 85 || scale.warehouses == 1 {
        (w_id, d_id)
    } else {
        let mut other = random::uniform(rng, 1, scale.warehouses);
        if other == w_id {
            other = (other % scale.warehouses) + 1;
        }
        (other, random::uniform(rng, 1, scale.districts_per_warehouse))
    };

    // Update warehouse and district YTD.
    let (w_rid, mut warehouse) = db
        .index_get(txn, "WAREHOUSE", "W_IDX", &schema::warehouse_key(w_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("warehouse {w_id}")))?;
    warehouse[W_YTD] = Value::Float(float(&warehouse, W_YTD) + amount);
    db.update(txn, "WAREHOUSE", w_rid, &warehouse)?;
    let (d_rid, mut district) = db
        .index_get(txn, "DISTRICT", "D_IDX", &schema::district_key(w_id, d_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("district {w_id}-{d_id}")))?;
    district[D_YTD] = Value::Float(float(&district, D_YTD) + amount);
    db.update(txn, "DISTRICT", d_rid, &district)?;

    // Customer update.
    let Some((c_rid, mut customer)) = select_customer(db, scale, rng, txn, c_w_id, c_d_id)? else {
        return Ok(db.rollback(txn));
    };
    customer[C_BALANCE] = Value::Float(float(&customer, C_BALANCE) - amount);
    customer[C_YTD_PAYMENT] = Value::Float(float(&customer, C_YTD_PAYMENT) + amount);
    customer[C_PAYMENT_CNT] = Value::Int(int(&customer, C_PAYMENT_CNT) + 1);
    if customer[C_CREDIT].as_str() == Some("BC") {
        let c_id = int(&customer, 0);
        let old = customer[C_DATA].as_str().unwrap_or("").to_string();
        let new_data = format!("{c_id} {c_d_id} {c_w_id} {d_id} {w_id} {amount:.2}|{old}");
        customer[C_DATA] = Value::Str(new_data);
    }
    db.update(txn, "CUSTOMER", c_rid, &customer)?;

    // History row (no index).
    let hist: Record = vec![
        Value::Int(int(&customer, 0)),
        Value::Int(c_d_id),
        Value::Int(c_w_id),
        Value::Int(d_id),
        Value::Int(w_id),
        Value::Str("20160315120000".into()),
        Value::Float(amount),
        Value::Str("payment-history-data".into()),
    ];
    db.insert(txn, "HISTORY", &hist, &[])?;
    db.commit(txn)
}

/// The OrderStatus transaction (TPC-C §2.6) — read only.
pub fn order_status(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
) -> dbms_engine::Result<TxnOutcome> {
    let d_id = random::uniform(rng, 1, scale.districts_per_warehouse);
    let Some((_, customer)) = select_customer(db, scale, rng, txn, w_id, d_id)? else {
        return Ok(db.rollback(txn));
    };
    let c_id = int(&customer, 0);
    // Most recent order of the customer.
    let orders = db.index_prefix(
        txn,
        "ORDER",
        "O_CUST_IDX",
        &dbms_engine::value::composite_key(&[w_id, d_id, c_id]),
    )?;
    if let Some((_, o_rid)) = orders.last() {
        let order = db.get(txn, "ORDER", *o_rid)?;
        let o_id = int(&order, 0);
        // Read all of its order lines.
        let lines = db.index_prefix(
            txn,
            "ORDERLINE",
            "OL_IDX",
            &dbms_engine::value::composite_key(&[w_id, d_id, o_id]),
        )?;
        for (_, ol_rid) in lines {
            let ol = db.get(txn, "ORDERLINE", ol_rid)?;
            debug_assert_eq!(int(&ol, 0), o_id);
        }
    }
    db.commit(txn)
}

/// The Delivery transaction (TPC-C §2.7): deliver the oldest undelivered
/// order of every district.
pub fn delivery(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
) -> dbms_engine::Result<TxnOutcome> {
    let carrier = random::uniform(rng, 1, 10);
    for d_id in 1..=scale.districts_per_warehouse {
        // Oldest undelivered order of the district.
        let pending = db.index_prefix(
            txn,
            "NEW_ORDER",
            "NO_IDX",
            &dbms_engine::value::composite_key(&[w_id, d_id]),
        )?;
        let Some((no_key, no_rid)) = pending.first().cloned() else {
            continue;
        };
        let no_row = db.get(txn, "NEW_ORDER", no_rid)?;
        let o_id = int(&no_row, 0);
        db.delete(txn, "NEW_ORDER", no_rid, &[("NO_IDX", no_key)])?;

        // Update the order's carrier.
        let Some((o_rid, mut order)) =
            db.index_get(txn, "ORDER", "O_IDX", &schema::order_key(w_id, d_id, o_id))?
        else {
            continue;
        };
        let c_id = int(&order, O_C_ID);
        order[O_CARRIER_ID] = Value::Int(carrier);
        db.update(txn, "ORDER", o_rid, &order)?;

        // Stamp every order line and sum the amounts.
        let lines = db.index_prefix(
            txn,
            "ORDERLINE",
            "OL_IDX",
            &dbms_engine::value::composite_key(&[w_id, d_id, o_id]),
        )?;
        let mut total = 0.0;
        for (_, ol_rid) in lines {
            let mut ol = db.get(txn, "ORDERLINE", ol_rid)?;
            total += float(&ol, OL_AMOUNT);
            ol[OL_DELIVERY_D] = Value::Str("20160315130000".into());
            db.update(txn, "ORDERLINE", ol_rid, &ol)?;
        }

        // Credit the customer.
        if let Some((c_rid, mut customer)) =
            db.index_get(txn, "CUSTOMER", "C_IDX", &schema::customer_key(w_id, d_id, c_id))?
        {
            customer[C_BALANCE] = Value::Float(float(&customer, C_BALANCE) + total);
            customer[C_DELIVERY_CNT] = Value::Int(int(&customer, C_DELIVERY_CNT) + 1);
            db.update(txn, "CUSTOMER", c_rid, &customer)?;
        }
    }
    db.commit(txn)
}

/// The StockLevel transaction (TPC-C §2.8) — read only.
pub fn stock_level(
    db: &Database,
    scale: &ScaleConfig,
    rng: &mut StdRng,
    txn: &mut Txn,
    w_id: i64,
) -> dbms_engine::Result<TxnOutcome> {
    let d_id = random::uniform(rng, 1, scale.districts_per_warehouse);
    let threshold = random::uniform(rng, 10, 20);
    let (_, district) = db
        .index_get(txn, "DISTRICT", "D_IDX", &schema::district_key(w_id, d_id))?
        .ok_or_else(|| dbms_engine::DbError::not_found(format!("district {w_id}-{d_id}")))?;
    let next_o_id = int(&district, D_NEXT_O_ID);
    // Order lines of the last 20 orders.
    let low = dbms_engine::value::composite_key(&[w_id, d_id, (next_o_id - 20).max(1), 0]);
    let high = dbms_engine::value::composite_key(&[w_id, d_id, next_o_id, 0]);
    let lines = db.index_range(txn, "ORDERLINE", "OL_IDX", &low, &high)?;
    let mut items = std::collections::BTreeSet::new();
    for (_, ol_rid) in lines {
        let ol = db.get(txn, "ORDERLINE", ol_rid)?;
        items.insert(int(&ol, OL_I_ID));
    }
    let mut low_stock = 0u64;
    for i_id in items {
        if let Some((_, stock)) =
            db.index_get(txn, "STOCK", "S_IDX", &schema::stock_key(w_id, i_id))?
        {
            if int(&stock, S_QUANTITY) < threshold {
                low_stock += 1;
            }
        }
    }
    let _ = low_stock;
    db.commit(txn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::Loader;
    use crate::placement;
    use dbms_engine::{DatabaseConfig, NoFtlBackend};
    use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Database, ScaleConfig, SimTime) {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement::traditional(8)).unwrap());
        let db =
            Database::open(backend, DatabaseConfig { buffer_pages: 1024, ..Default::default() })
                .unwrap();
        let scale = ScaleConfig::tiny();
        let (_, done) = Loader::new(scale, 3).load(&db, SimTime::ZERO).unwrap();
        (db, scale, done)
    }

    #[test]
    fn new_order_advances_the_district_sequence() {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut committed = 0;
        for i in 0..20 {
            let mut txn = db.begin(t0 + flash_sim::Duration::from_us(i));
            if new_order(&db, &scale, &mut rng, &mut txn, 1).unwrap() == TxnOutcome::Committed {
                committed += 1;
            }
        }
        assert!(committed >= 15, "most NewOrders commit ({committed}/20)");
        // The district counter moved forward by the number of committed
        // orders that hit each district; overall it must have grown.
        let mut txn = db.begin(t0);
        let (_, d1) = db
            .index_get(&mut txn, "DISTRICT", "D_IDX", &schema::district_key(1, 1))
            .unwrap()
            .unwrap();
        let (_, d2) = db
            .index_get(&mut txn, "DISTRICT", "D_IDX", &schema::district_key(1, 2))
            .unwrap()
            .unwrap();
        let grown = int(&d1, D_NEXT_O_ID) + int(&d2, D_NEXT_O_ID);
        assert!(grown > 2 * (scale.initial_orders_per_district + 1));
    }

    #[test]
    fn payment_updates_balances_and_history() {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let history_before = db.table("HISTORY").unwrap().heap.record_count();
        for i in 0..10 {
            let mut txn = db.begin(t0 + flash_sim::Duration::from_us(i));
            let outcome = payment(&db, &scale, &mut rng, &mut txn, 1).unwrap();
            assert_eq!(outcome, TxnOutcome::Committed);
        }
        let history_after = db.table("HISTORY").unwrap().heap.record_count();
        assert_eq!(history_after, history_before + 10);
        // Warehouse YTD grew.
        let mut txn = db.begin(t0);
        let (_, w) = db
            .index_get(&mut txn, "WAREHOUSE", "W_IDX", &schema::warehouse_key(1))
            .unwrap()
            .unwrap();
        assert!(float(&w, W_YTD) > 300_000.0);
    }

    #[test]
    fn order_status_and_stock_level_are_read_only() {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let writes_before = db.buffer_stats().logical_writes;
        for i in 0..5 {
            let mut txn = db.begin(t0 + flash_sim::Duration::from_us(i));
            order_status(&db, &scale, &mut rng, &mut txn, 1).unwrap();
            let mut txn = db.begin(t0 + flash_sim::Duration::from_us(100 + i));
            stock_level(&db, &scale, &mut rng, &mut txn, 1).unwrap();
        }
        // No table writes (WAL pages are written outside the buffer pool).
        assert_eq!(db.buffer_stats().logical_writes, writes_before);
    }

    #[test]
    fn delivery_clears_new_orders() {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let pending_before = db.table("NEW_ORDER").unwrap().heap.record_count();
        assert!(pending_before > 0);
        let mut txn = db.begin(t0);
        delivery(&db, &scale, &mut rng, &mut txn, 1).unwrap();
        let pending_after = db.table("NEW_ORDER").unwrap().heap.record_count();
        // One order per district is delivered.
        assert_eq!(pending_after, pending_before - scale.districts_per_warehouse as u64);
        // Delivered orders have a carrier assigned.
        let orders = db
            .index_prefix(&mut txn, "ORDER", "O_IDX", &dbms_engine::value::composite_key(&[1, 1]))
            .unwrap();
        let mut delivered = 0;
        for (_, rid) in orders {
            let o = db.get(&mut txn, "ORDER", rid).unwrap();
            if int(&o, O_CARRIER_ID) > 0 {
                delivered += 1;
            }
        }
        assert!(delivered > 0);
    }

    #[test]
    fn new_order_rollbacks_occur_for_unused_items() {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut rolled_back = 0;
        for i in 0..300 {
            let mut txn = db.begin(t0 + flash_sim::Duration::from_us(i));
            if new_order(&db, &scale, &mut rng, &mut txn, 1).unwrap() == TxnOutcome::RolledBack {
                rolled_back += 1;
            }
        }
        // ~1 % of NewOrders must roll back; with 300 trials expect ≥ 1.
        assert!(rolled_back >= 1, "expected at least one rollback");
        assert!(rolled_back < 30, "rollbacks should stay around 1 %");
        assert_eq!(db.rollback_count(), rolled_back);
    }
}
