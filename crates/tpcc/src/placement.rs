//! Data-placement configurations for the TPC-C experiment.
//!
//! Two configurations are compared in the paper's Figure 3:
//!
//! * **traditional data placement** — every object striped over all dies
//!   (one region), i.e. the DBMS exercises no placement control;
//! * **multi-region placement (Figure 2)** — six regions whose die counts
//!   (2 / 11 / 10 / 29 / 6 / 6 on 64 dies) reflect object sizes and I/O
//!   rates.
//!
//! The poster's Figure 2 table is typeset in a way that loses the exact
//! row/object pairing; the reconstruction below keeps the published die
//! counts and groups objects by the update behaviour the text describes
//! (hot insert streams, hot updates, large read-mostly objects, small hot
//! tables, order indexes, metadata/history).  EXPERIMENTS.md documents
//! this reconstruction explicitly.

use noftl_core::{ObjectProfile, PlacementAdvisor, PlacementConfig, RegionAssignment};

use crate::schema::object_names;

/// The traditional single-region placement over `total_dies` dies.
pub fn traditional(total_dies: u32) -> PlacementConfig {
    PlacementConfig::traditional(total_dies, object_names())
}

/// The six-region Figure 2 placement, scaled to `total_dies` dies.
///
/// With `total_dies == 64` the die counts are exactly the paper's
/// (2, 11, 10, 29, 6, 6); for other device sizes the counts are scaled
/// proportionally (largest-remainder, at least one die each).
pub fn figure2(total_dies: u32) -> PlacementConfig {
    // The engine's write-ahead log (an append/overwrite-hot object that
    // Shore-MT kept on a separate device) is grouped with the other hot
    // insert streams rather than with the 2-die metadata region, so that
    // commit forces are not bottlenecked on two dies.
    let groups: Vec<(&str, Vec<&str>, u32)> = vec![
        ("rgMeta", vec!["DBMS-metadata", "HISTORY"], 2),
        ("rgOrderStream", vec!["ORDERLINE", "NEW_ORDER", "ORDER", "DBMS-log"], 11),
        ("rgCustomer", vec!["CUSTOMER", "C_IDX", "I_IDX", "S_IDX", "W_IDX"], 10),
        ("rgStock", vec!["OL_IDX", "STOCK", "C_NAME_IDX", "ITEM", "D_IDX"], 29),
        ("rgWhDist", vec!["WAREHOUSE", "DISTRICT"], 6),
        ("rgOrderIdx", vec!["NO_IDX", "O_IDX", "O_CUST_IDX"], 6),
    ];
    let paper_total: u32 = groups.iter().map(|(_, _, d)| *d).sum();
    assert_eq!(paper_total, 64, "paper assigns 64 dies");
    let mut regions: Vec<RegionAssignment> = Vec::with_capacity(groups.len());
    if total_dies == paper_total {
        for (name, objects, dies) in groups {
            regions.push(RegionAssignment {
                region_name: name.to_string(),
                objects: objects.iter().map(|s| s.to_string()).collect(),
                dies,
                service_class: None,
            });
        }
    } else {
        assert!(
            total_dies >= groups.len() as u32,
            "need at least {} dies for the six-region placement",
            groups.len()
        );
        // Scale proportionally with a largest-remainder pass.
        let shares: Vec<f64> = groups
            .iter()
            .map(|(_, _, d)| *d as f64 / paper_total as f64 * total_dies as f64)
            .collect();
        let mut dies: Vec<u32> = shares.iter().map(|s| (s.floor() as u32).max(1)).collect();
        let mut assigned: u32 = dies.iter().sum();
        let mut order: Vec<(usize, f64)> =
            shares.iter().enumerate().map(|(i, s)| (i, s - s.floor())).collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut i = 0;
        while assigned < total_dies {
            dies[order[i % order.len()].0] += 1;
            assigned += 1;
            i += 1;
        }
        while assigned > total_dies {
            // Remove from the largest region(s) but never below one die.
            let max_idx = (0..dies.len()).max_by_key(|&i| dies[i]).expect("non-empty");
            if dies[max_idx] > 1 {
                dies[max_idx] -= 1;
                assigned -= 1;
            } else {
                break;
            }
        }
        for ((name, objects, _), d) in groups.into_iter().zip(dies) {
            regions.push(RegionAssignment {
                region_name: name.to_string(),
                objects: objects.iter().map(|s| s.to_string()).collect(),
                dies: d,
                service_class: None,
            });
        }
    }
    PlacementConfig { regions }
}

/// Derive a placement automatically from measured object statistics using
/// the [`PlacementAdvisor`] — the automated counterpart of the paper's
/// hand-built Figure 2 (used by the `figure2` bench binary to show that
/// the measured I/O profile reproduces the paper's die shares).
pub fn advised(
    profiles: &[ObjectProfile],
    groups: &[(String, Vec<String>)],
    total_dies: u32,
) -> PlacementConfig {
    let advisor = PlacementAdvisor::default();
    let grouped: Vec<(String, Vec<ObjectProfile>)> = groups
        .iter()
        .map(|(name, members)| {
            let members: Vec<ObjectProfile> =
                profiles.iter().filter(|p| members.contains(&p.name)).cloned().collect();
            (name.clone(), members)
        })
        .collect();
    advisor.assign_dies(&grouped, total_dies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_uses_one_region() {
        let cfg = traditional(64);
        assert_eq!(cfg.region_count(), 1);
        assert_eq!(cfg.total_dies(), 64);
        assert!(cfg.region_of("STOCK").is_some());
        assert!(cfg.region_of("DBMS-log").is_some());
    }

    #[test]
    fn figure2_reproduces_paper_die_counts() {
        let cfg = figure2(64);
        assert_eq!(cfg.region_count(), 6);
        assert_eq!(cfg.total_dies(), 64);
        let dies: Vec<u32> = cfg.regions.iter().map(|r| r.dies).collect();
        assert_eq!(dies, vec![2, 11, 10, 29, 6, 6]);
        // STOCK lands in the big region, ORDERLINE in the 11-die region.
        assert_eq!(cfg.region_of("STOCK").unwrap().dies, 29);
        assert_eq!(cfg.region_of("ORDERLINE").unwrap().dies, 11);
        assert_eq!(cfg.region_of("HISTORY").unwrap().dies, 2);
    }

    #[test]
    fn figure2_scales_to_other_device_sizes() {
        for dies in [6u32, 8, 16, 32, 128] {
            let cfg = figure2(dies);
            assert_eq!(cfg.total_dies(), dies, "total for {dies} dies");
            assert_eq!(cfg.region_count(), 6);
            assert!(cfg.regions.iter().all(|r| r.dies >= 1));
            // Relative ordering is preserved: the stock region is the largest.
            let stock = cfg.region_of("STOCK").unwrap().dies;
            assert!(cfg.regions.iter().all(|r| r.dies <= stock));
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn figure2_needs_six_dies() {
        figure2(3);
    }

    #[test]
    fn advised_placement_covers_groups() {
        let profiles = vec![
            ObjectProfile { name: "STOCK".into(), pages: 10_000, reads: 50_000, writes: 40_000 },
            ObjectProfile { name: "ORDERLINE".into(), pages: 5_000, reads: 10_000, writes: 30_000 },
            ObjectProfile { name: "ITEM".into(), pages: 2_000, reads: 20_000, writes: 0 },
            ObjectProfile { name: "HISTORY".into(), pages: 1_000, reads: 0, writes: 5_000 },
        ];
        let groups = vec![
            ("rgHot".to_string(), vec!["STOCK".to_string(), "ORDERLINE".to_string()]),
            ("rgCold".to_string(), vec!["ITEM".to_string(), "HISTORY".to_string()]),
        ];
        let cfg = advised(&profiles, &groups, 16);
        assert_eq!(cfg.total_dies(), 16);
        let hot = cfg.regions.iter().find(|r| r.region_name == "rgHot").unwrap();
        let cold = cfg.regions.iter().find(|r| r.region_name == "rgCold").unwrap();
        assert!(hot.dies > cold.dies, "the hot group should receive more dies");
    }
}
