//! Run reports and the Figure 3 comparison table.

use flash_sim::{DeviceStats, Duration, WearSummary};

use crate::driver::TxnType;

/// Per-transaction-type statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnTypeStats {
    /// Transactions of this type executed (committed or rolled back).
    pub count: u64,
    /// Transactions of this type that committed.
    pub committed: u64,
    /// Sum of response times.
    pub total_response: Duration,
}

impl TxnTypeStats {
    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_response.as_ms_f64() / self.count as f64
        }
    }
}

/// Result of one TPC-C run (one data-placement configuration).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label of the configuration (e.g. "Traditional", "Regions").
    pub label: String,
    /// Committed transactions.
    pub committed: u64,
    /// Rolled-back transactions.
    pub rolled_back: u64,
    /// Simulated wall-clock time of the run.
    pub makespan: Duration,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Per-type statistics.
    pub per_type: Vec<(TxnType, TxnTypeStats)>,
    /// Host 4 KiB page reads issued to the flash device.
    pub host_reads: u64,
    /// Host 4 KiB page writes issued to the flash device.
    pub host_writes: u64,
    /// GC copybacks performed by the device.
    pub gc_copybacks: u64,
    /// GC block erases performed by the device.
    pub gc_erases: u64,
    /// Mean end-to-end 4 KiB read latency in microseconds.
    pub avg_read_latency_us: f64,
    /// Mean end-to-end 4 KiB write (program) latency in microseconds.
    pub avg_write_latency_us: f64,
    /// Buffer pool statistics.
    pub buffer: dbms_engine::BufferStats,
    /// WAL forces performed.
    pub wal_forces: u64,
}

impl RunReport {
    /// Look up the statistics of one transaction type.
    pub fn type_stats(&self, t: TxnType) -> Option<&TxnTypeStats> {
        self.per_type.iter().find(|(ty, _)| *ty == t).map(|(_, s)| s)
    }

    /// Fill in the device-level counters from a device snapshot
    /// (typically the delta between the stats after and before the run).
    pub fn attach_device(&mut self, dev: &DeviceStats, _wear: &WearSummary) {
        self.host_reads = dev.page_reads;
        self.host_writes = dev.page_programs;
        self.gc_copybacks = dev.copybacks;
        self.gc_erases = dev.block_erases;
        self.avg_read_latency_us = dev.avg_read_latency_us();
        self.avg_write_latency_us = dev.avg_program_latency_us();
    }

    /// Write amplification observed during the run.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            (self.host_writes + self.gc_copybacks) as f64 / self.host_writes as f64
        }
    }
}

/// A side-by-side comparison of two runs in the shape of the paper's
/// Figure 3.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// The baseline run ("Traditional data placement").
    pub traditional: RunReport,
    /// The multi-region run ("Data placement using Regions").
    pub regions: RunReport,
}

impl ComparisonReport {
    /// Relative change of the regions run versus the baseline, in percent
    /// (positive = the regions value is larger).
    pub fn delta_pct(base: f64, new: f64) -> f64 {
        if base.abs() < f64::EPSILON {
            0.0
        } else {
            (new - base) / base * 100.0
        }
    }

    /// Throughput improvement of regions over traditional placement, in
    /// percent (the paper reports ≈ +20 %).
    pub fn tps_improvement_pct(&self) -> f64 {
        Self::delta_pct(self.traditional.tps, self.regions.tps)
    }

    /// Reduction in GC copybacks, in percent (the paper reports ≈ −20 %).
    pub fn copyback_reduction_pct(&self) -> f64 {
        -Self::delta_pct(self.traditional.gc_copybacks as f64, self.regions.gc_copybacks as f64)
    }

    /// Reduction in GC erases, in percent (the paper reports ≈ −4.3 %).
    pub fn erase_reduction_pct(&self) -> f64 {
        -Self::delta_pct(self.traditional.gc_erases as f64, self.regions.gc_erases as f64)
    }

    fn row(name: &str, a: String, b: String) -> String {
        format!("{name:<28} {a:>18} {b:>18}\n")
    }

    /// Render the comparison as a plain-text table mirroring Figure 3.
    pub fn to_table(&self) -> String {
        let t = &self.traditional;
        let r = &self.regions;
        let mut out = String::new();
        out.push_str(&Self::row("", "Traditional".to_string(), "Regions".to_string()));
        out.push_str(&Self::row("TPS", format!("{:.2}", t.tps), format!("{:.2}", r.tps)));
        out.push_str(&Self::row(
            "READ 4KB (us)",
            format!("{:.2}", t.avg_read_latency_us),
            format!("{:.2}", r.avg_read_latency_us),
        ));
        out.push_str(&Self::row(
            "WRITE 4KB (us)",
            format!("{:.2}", t.avg_write_latency_us),
            format!("{:.2}", r.avg_write_latency_us),
        ));
        for txn in [TxnType::NewOrder, TxnType::Payment, TxnType::StockLevel] {
            let a = t.type_stats(txn).copied().unwrap_or_default();
            let b = r.type_stats(txn).copied().unwrap_or_default();
            out.push_str(&Self::row(
                &format!("{} TRX (ms)", txn.name()),
                format!("{:.2}", a.mean_response_ms()),
                format!("{:.2}", b.mean_response_ms()),
            ));
        }
        out.push_str(&Self::row("Transactions", t.committed.to_string(), r.committed.to_string()));
        out.push_str(&Self::row(
            "Host READ I/Os (4KB)",
            t.host_reads.to_string(),
            r.host_reads.to_string(),
        ));
        out.push_str(&Self::row(
            "Host WRITE I/Os (4KB)",
            t.host_writes.to_string(),
            r.host_writes.to_string(),
        ));
        out.push_str(&Self::row(
            "GC COPYBACKs",
            t.gc_copybacks.to_string(),
            r.gc_copybacks.to_string(),
        ));
        out.push_str(&Self::row("GC ERASEs", t.gc_erases.to_string(), r.gc_erases.to_string()));
        out.push_str(&Self::row(
            "Write amplification",
            format!("{:.3}", t.write_amplification()),
            format!("{:.3}", r.write_amplification()),
        ));
        out.push_str(&format!(
            "\nRegions vs. traditional: TPS {:+.1}%, copybacks {:+.1}%, erases {:+.1}%\n",
            self.tps_improvement_pct(),
            -self.copyback_reduction_pct(),
            -self.erase_reduction_pct(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, tps: f64, copybacks: u64, erases: u64) -> RunReport {
        RunReport {
            label: label.to_string(),
            committed: 1000,
            rolled_back: 10,
            makespan: Duration::from_ms(500),
            tps,
            per_type: vec![(
                TxnType::NewOrder,
                TxnTypeStats { count: 450, committed: 445, total_response: Duration::from_ms(900) },
            )],
            host_reads: 100_000,
            host_writes: 20_000,
            gc_copybacks: copybacks,
            gc_erases: erases,
            avg_read_latency_us: 500.0,
            avg_write_latency_us: 300.0,
            buffer: dbms_engine::BufferStats::default(),
            wal_forces: 1000,
        }
    }

    #[test]
    fn txn_type_stats_mean() {
        let s = TxnTypeStats { count: 4, committed: 4, total_response: Duration::from_ms(40) };
        assert!((s.mean_response_ms() - 10.0).abs() < 1e-9);
        assert_eq!(TxnTypeStats::default().mean_response_ms(), 0.0);
    }

    #[test]
    fn attach_device_copies_counters() {
        let mut r = report("x", 100.0, 0, 0);
        let dev = DeviceStats {
            page_reads: 5,
            page_programs: 7,
            copybacks: 3,
            block_erases: 2,
            read_latency_sum: Duration::from_us(500),
            program_latency_sum: Duration::from_us(700),
            ..Default::default()
        };
        r.attach_device(&dev, &WearSummary::default());
        assert_eq!(r.host_reads, 5);
        assert_eq!(r.host_writes, 7);
        assert_eq!(r.gc_copybacks, 3);
        assert_eq!(r.gc_erases, 2);
        assert!((r.avg_read_latency_us - 100.0).abs() < 1e-9);
        assert!((r.write_amplification() - 10.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_percentages_match_expectations() {
        let cmp = ComparisonReport {
            traditional: report("Traditional", 595.0, 4_326_612, 110_410),
            regions: report("Regions", 720.0, 3_496_984, 105_564),
        };
        assert!((cmp.tps_improvement_pct() - 21.0).abs() < 0.1);
        assert!((cmp.copyback_reduction_pct() - 19.2).abs() < 0.2);
        assert!((cmp.erase_reduction_pct() - 4.4).abs() < 0.2);
        let table = cmp.to_table();
        assert!(table.contains("GC COPYBACKs"));
        assert!(table.contains("NewOrder TRX (ms)"));
        assert!(table.contains("Traditional"));
        assert!(table.contains("Regions"));
    }

    #[test]
    fn delta_pct_handles_zero_baseline() {
        assert_eq!(ComparisonReport::delta_pct(0.0, 10.0), 0.0);
        assert!((ComparisonReport::delta_pct(100.0, 120.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_guards_zero() {
        let mut r = report("x", 1.0, 0, 0);
        r.host_writes = 0;
        assert_eq!(r.write_amplification(), 0.0);
    }
}
