//! Closed-loop TPC-C driver over simulated time.
//!
//! The driver emulates N logical clients, each bound to a home warehouse.
//! Every client executes transactions back-to-back on its own simulated
//! clock; at each step the driver advances the client whose clock is
//! furthest behind, so clients interleave in simulated time and contend
//! for the flash dies and channels exactly as concurrent threads would.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dbms_engine::txn::TxnOutcome;
use dbms_engine::Database;
use flash_sim::{Duration, SimTime};

use crate::loader::ScaleConfig;
use crate::random;
use crate::report::{RunReport, TxnTypeStats};
use crate::transactions;

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxnType {
    /// NewOrder (§2.4).
    NewOrder,
    /// Payment (§2.5).
    Payment,
    /// OrderStatus (§2.6).
    OrderStatus,
    /// Delivery (§2.7).
    Delivery,
    /// StockLevel (§2.8).
    StockLevel,
}

impl TxnType {
    /// All transaction types in a fixed order.
    pub fn all() -> [TxnType; 5] {
        [
            TxnType::NewOrder,
            TxnType::Payment,
            TxnType::OrderStatus,
            TxnType::Delivery,
            TxnType::StockLevel,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            TxnType::NewOrder => "NewOrder",
            TxnType::Payment => "Payment",
            TxnType::OrderStatus => "OrderStatus",
            TxnType::Delivery => "Delivery",
            TxnType::StockLevel => "StockLevel",
        }
    }
}

/// Transaction mix as integer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnMix {
    /// Weight of NewOrder.
    pub new_order: u32,
    /// Weight of Payment.
    pub payment: u32,
    /// Weight of OrderStatus.
    pub order_status: u32,
    /// Weight of Delivery.
    pub delivery: u32,
    /// Weight of StockLevel.
    pub stock_level: u32,
}

impl TxnMix {
    /// The standard TPC-C mix (45/43/4/4/4).
    pub fn standard() -> Self {
        TxnMix { new_order: 45, payment: 43, order_status: 4, delivery: 4, stock_level: 4 }
    }

    /// A write-heavy mix useful for GC stress ablations.
    pub fn write_heavy() -> Self {
        TxnMix { new_order: 60, payment: 38, order_status: 1, delivery: 1, stock_level: 0 }
    }

    /// Total weight.
    pub fn total(&self) -> u32 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }

    /// Pick a transaction type according to the weights.
    pub fn pick(&self, rng: &mut StdRng) -> TxnType {
        let total = self.total().max(1);
        let roll = random::uniform(rng, 1, total as i64) as u32;
        let mut acc = self.new_order;
        if roll <= acc {
            return TxnType::NewOrder;
        }
        acc += self.payment;
        if roll <= acc {
            return TxnType::Payment;
        }
        acc += self.order_status;
        if roll <= acc {
            return TxnType::OrderStatus;
        }
        acc += self.delivery;
        if roll <= acc {
            return TxnType::Delivery;
        }
        TxnType::StockLevel
    }
}

impl Default for TxnMix {
    fn default() -> Self {
        Self::standard()
    }
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Number of logical clients (terminals).
    pub clients: usize,
    /// Total transactions to execute across all clients.
    pub total_transactions: u64,
    /// Transaction mix.
    pub mix: TxnMix,
    /// RNG seed (each client derives its own stream).
    pub seed: u64,
    /// Optional think time added after every transaction.
    pub think_time: Duration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients: 20,
            total_transactions: 10_000,
            mix: TxnMix::standard(),
            seed: 42,
            think_time: Duration::ZERO,
        }
    }
}

struct Client {
    rng: StdRng,
    clock: SimTime,
    home_warehouse: i64,
}

/// The closed-loop driver.
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// Create a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// Run the workload against `db`, starting at simulated time `start`.
    pub fn run(
        &self,
        db: &Database,
        scale: &ScaleConfig,
        start: SimTime,
    ) -> dbms_engine::Result<RunReport> {
        let cfg = &self.config;
        let mut clients: Vec<Client> = (0..cfg.clients.max(1))
            .map(|i| Client {
                rng: StdRng::seed_from_u64(
                    cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                ),
                clock: start,
                home_warehouse: (i as i64 % scale.warehouses) + 1,
            })
            .collect();
        let mut per_type: std::collections::BTreeMap<TxnType, TxnTypeStats> =
            TxnType::all().into_iter().map(|t| (t, TxnTypeStats::default())).collect();
        let mut committed = 0u64;
        let mut rolled_back = 0u64;

        for _ in 0..cfg.total_transactions {
            // Advance the client whose clock is furthest behind.
            let idx = clients
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.clock)
                .map(|(i, _)| i)
                .expect("at least one client");
            let client = &mut clients[idx];
            let txn_type = cfg.mix.pick(&mut client.rng);
            let mut txn = db.begin(client.clock);
            let w_id = client.home_warehouse;
            let outcome = match txn_type {
                TxnType::NewOrder => {
                    transactions::new_order(db, scale, &mut client.rng, &mut txn, w_id)?
                }
                TxnType::Payment => {
                    transactions::payment(db, scale, &mut client.rng, &mut txn, w_id)?
                }
                TxnType::OrderStatus => {
                    transactions::order_status(db, scale, &mut client.rng, &mut txn, w_id)?
                }
                TxnType::Delivery => {
                    transactions::delivery(db, scale, &mut client.rng, &mut txn, w_id)?
                }
                TxnType::StockLevel => {
                    transactions::stock_level(db, scale, &mut client.rng, &mut txn, w_id)?
                }
            };
            let response = txn.elapsed();
            let stats = per_type.get_mut(&txn_type).expect("all types present");
            stats.count += 1;
            stats.total_response += response;
            match outcome {
                TxnOutcome::Committed => {
                    committed += 1;
                    stats.committed += 1;
                }
                TxnOutcome::RolledBack => rolled_back += 1,
            }
            client.clock = txn.now + cfg.think_time;
        }

        let makespan = clients.iter().map(|c| c.clock).max().unwrap_or(start).since(start);
        let tps = if makespan.as_secs_f64() > 0.0 {
            committed as f64 / makespan.as_secs_f64()
        } else {
            0.0
        };
        Ok(RunReport {
            label: String::new(),
            committed,
            rolled_back,
            makespan,
            tps,
            per_type: per_type.into_iter().collect(),
            host_reads: 0,
            host_writes: 0,
            gc_copybacks: 0,
            gc_erases: 0,
            avg_read_latency_us: 0.0,
            avg_write_latency_us: 0.0,
            buffer: db.buffer_stats(),
            wal_forces: db.wal_stats().forces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::Loader;
    use crate::placement;
    use dbms_engine::{DatabaseConfig, NoFtlBackend};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig};
    use std::sync::Arc;

    #[test]
    fn mix_weights_are_respected() {
        let mix = TxnMix::standard();
        assert_eq!(mix.total(), 100);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(mix.pick(&mut rng)).or_insert(0u32) += 1;
        }
        let new_order = counts[&TxnType::NewOrder] as f64 / 10_000.0;
        let payment = counts[&TxnType::Payment] as f64 / 10_000.0;
        assert!((new_order - 0.45).abs() < 0.03, "NewOrder share {new_order}");
        assert!((payment - 0.43).abs() < 0.03, "Payment share {payment}");
        assert!(counts[&TxnType::Delivery] > 0);
        assert!(counts[&TxnType::StockLevel] > 0);
        assert!(counts[&TxnType::OrderStatus] > 0);
        // Degenerate mix still picks something.
        let zero =
            TxnMix { new_order: 0, payment: 0, order_status: 0, delivery: 0, stock_level: 0 };
        let _ = zero.pick(&mut rng);
        assert_eq!(TxnType::NewOrder.name(), "NewOrder");
    }

    #[test]
    fn small_end_to_end_run_produces_sane_report() {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
        let backend = Arc::new(NoFtlBackend::new(noftl, &placement::traditional(8)).unwrap());
        // A small buffer pool so the run actually misses and reads flash.
        let db = Database::open(backend, DatabaseConfig { buffer_pages: 48, ..Default::default() })
            .unwrap();
        let scale = crate::loader::ScaleConfig::tiny();
        let (_, loaded_at) = Loader::new(scale, 11).load(&db, SimTime::ZERO).unwrap();
        let driver = Driver::new(DriverConfig {
            clients: 4,
            total_transactions: 200,
            seed: 5,
            ..Default::default()
        });
        let mut report = driver.run(&db, &scale, loaded_at).unwrap();
        report.attach_device(&device.stats(), &device.wear_summary());
        assert_eq!(report.committed + report.rolled_back, 200);
        assert!(report.committed > 150);
        assert!(report.tps > 0.0);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.host_reads > 0, "device reads must have happened");
        let new_order = report.type_stats(TxnType::NewOrder).unwrap();
        assert!(new_order.count > 50);
        assert!(new_order.mean_response_ms() > 0.0);
        // Deterministic: the same seed gives the same transaction counts.
        let device2 = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl2 = Arc::new(NoFtl::new(device2.clone(), NoFtlConfig::default()));
        let backend2 = Arc::new(NoFtlBackend::new(noftl2, &placement::traditional(8)).unwrap());
        let db2 =
            Database::open(backend2, DatabaseConfig { buffer_pages: 48, ..Default::default() })
                .unwrap();
        let (_, loaded2) = Loader::new(scale, 11).load(&db2, SimTime::ZERO).unwrap();
        let report2 = Driver::new(DriverConfig {
            clients: 4,
            total_transactions: 200,
            seed: 5,
            ..Default::default()
        })
        .run(&db2, &scale, loaded2)
        .unwrap();
        assert_eq!(report.committed, report2.committed);
        assert_eq!(report.makespan, report2.makespan);
    }
}
