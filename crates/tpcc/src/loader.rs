//! TPC-C database population.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dbms_engine::value::Value;
use dbms_engine::{Database, Record};
use flash_sim::SimTime;

use crate::random;
use crate::schema;

/// Cardinalities of the generated database.
///
/// [`ScaleConfig::full`] follows the TPC-C specification; the smaller
/// presets keep functional tests and quick experiments fast while
/// preserving the relative object sizes (STOCK ≫ CUSTOMER ≫ the rest)
/// that drive the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Number of warehouses (the TPC-C scale factor).
    pub warehouses: i64,
    /// Districts per warehouse (10 in the spec).
    pub districts_per_warehouse: i64,
    /// Customers per district (3 000 in the spec).
    pub customers_per_district: i64,
    /// Items in the catalog (100 000 in the spec); every warehouse stocks
    /// every item.
    pub items: i64,
    /// Initially loaded orders per district (3 000 in the spec, the last
    /// 30 % of which are still undelivered NEW_ORDERs).
    pub initial_orders_per_district: i64,
}

impl ScaleConfig {
    /// Specification-compliant cardinalities.
    pub fn full(warehouses: i64) -> Self {
        ScaleConfig {
            warehouses: warehouses.max(1),
            districts_per_warehouse: 10,
            customers_per_district: 3_000,
            items: 100_000,
            initial_orders_per_district: 3_000,
        }
    }

    /// A reduced scale for simulation experiments (≈ 1/10 of the spec).
    pub fn small(warehouses: i64) -> Self {
        ScaleConfig {
            warehouses: warehouses.max(1),
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 10_000,
            initial_orders_per_district: 300,
        }
    }

    /// A tiny scale for unit tests.
    pub fn tiny() -> Self {
        ScaleConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 100,
            initial_orders_per_district: 10,
        }
    }

    /// Total number of customers in the database.
    pub fn total_customers(&self) -> i64 {
        self.warehouses * self.districts_per_warehouse * self.customers_per_district
    }

    /// Approximate number of rows the loader creates.
    pub fn approximate_rows(&self) -> i64 {
        let per_wh = self.districts_per_warehouse
            * (self.customers_per_district * 2 + self.initial_orders_per_district * 12)
            + self.items;
        self.items + self.warehouses * per_wh
    }
}

/// Row counts produced by the loader.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Rows inserted per table.
    pub rows: HashMap<String, u64>,
}

impl LoadStats {
    fn bump(&mut self, table: &str) {
        *self.rows.entry(table.to_string()).or_insert(0) += 1;
    }

    /// Total rows inserted.
    pub fn total_rows(&self) -> u64 {
        self.rows.values().sum()
    }
}

/// Populates a database with TPC-C data.
pub struct Loader {
    scale: ScaleConfig,
    seed: u64,
}

impl Loader {
    /// Create a loader for the given scale and RNG seed.
    pub fn new(scale: ScaleConfig, seed: u64) -> Self {
        Loader { scale, seed }
    }

    /// Create the schema and load the initial database.  Returns the row
    /// counts and the simulated time at which loading (including the final
    /// flush of dirty pages) completes.
    pub fn load(&self, db: &Database, now: SimTime) -> dbms_engine::Result<(LoadStats, SimTime)> {
        schema::create_schema(db, now)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stats = LoadStats::default();
        let mut txn = db.begin(now);
        let s = &self.scale;

        // ITEM (global).
        for i_id in 1..=s.items {
            let rec: Record = vec![
                Value::Int(i_id),
                Value::Int(random::uniform(&mut rng, 1, 10_000)),
                Value::Str(random::a_string(&mut rng, 14, 24)),
                Value::Float(random::uniform(&mut rng, 100, 10_000) as f64 / 100.0),
                Value::Str(random::a_string(&mut rng, 26, 50)),
            ];
            db.insert(&mut txn, "ITEM", &rec, &[("I_IDX", schema::item_key(i_id))])?;
            stats.bump("ITEM");
        }

        for w_id in 1..=s.warehouses {
            self.load_warehouse(db, &mut txn, &mut rng, &mut stats, w_id)?;
        }
        db.commit(&mut txn)?;
        let done = db.flush_all(txn.now)?;
        Ok((stats, done))
    }

    fn load_warehouse(
        &self,
        db: &Database,
        txn: &mut dbms_engine::Txn,
        rng: &mut StdRng,
        stats: &mut LoadStats,
        w_id: i64,
    ) -> dbms_engine::Result<()> {
        let s = &self.scale;
        let rec: Record = vec![
            Value::Int(w_id),
            Value::Str(random::a_string(rng, 6, 10)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 2, 2)),
            Value::Str(random::zip(rng)),
            Value::Float(random::uniform(rng, 0, 2000) as f64 / 10_000.0),
            Value::Float(300_000.0),
        ];
        db.insert(txn, "WAREHOUSE", &rec, &[("W_IDX", schema::warehouse_key(w_id))])?;
        stats.bump("WAREHOUSE");

        // STOCK: one row per item.
        for i_id in 1..=s.items {
            let mut rec: Record =
                vec![Value::Int(i_id), Value::Int(w_id), Value::Int(random::uniform(rng, 10, 100))];
            for _ in 0..10 {
                rec.push(Value::Str(random::a_string(rng, 24, 24)));
            }
            rec.push(Value::Float(0.0));
            rec.push(Value::Int(0));
            rec.push(Value::Int(0));
            rec.push(Value::Str(random::a_string(rng, 26, 50)));
            db.insert(txn, "STOCK", &rec, &[("S_IDX", schema::stock_key(w_id, i_id))])?;
            stats.bump("STOCK");
        }

        for d_id in 1..=s.districts_per_warehouse {
            self.load_district(db, txn, rng, stats, w_id, d_id)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn load_district(
        &self,
        db: &Database,
        txn: &mut dbms_engine::Txn,
        rng: &mut StdRng,
        stats: &mut LoadStats,
        w_id: i64,
        d_id: i64,
    ) -> dbms_engine::Result<()> {
        let s = &self.scale;
        let rec: Record = vec![
            Value::Int(d_id),
            Value::Int(w_id),
            Value::Str(random::a_string(rng, 6, 10)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 10, 20)),
            Value::Str(random::a_string(rng, 2, 2)),
            Value::Str(random::zip(rng)),
            Value::Float(random::uniform(rng, 0, 2000) as f64 / 10_000.0),
            Value::Float(30_000.0),
            Value::Int(s.initial_orders_per_district + 1),
        ];
        db.insert(txn, "DISTRICT", &rec, &[("D_IDX", schema::district_key(w_id, d_id))])?;
        stats.bump("DISTRICT");

        // CUSTOMER + HISTORY.
        for c_id in 1..=s.customers_per_district {
            let last = if c_id <= 1000 {
                random::last_name(c_id - 1)
            } else {
                random::random_last_name(rng)
            };
            let credit = if random::uniform(rng, 1, 10) == 1 { "BC" } else { "GC" };
            let rec: Record = vec![
                Value::Int(c_id),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::Str(random::a_string(rng, 8, 16)),
                Value::Str("OE".into()),
                Value::Str(last.clone()),
                Value::Str(random::a_string(rng, 10, 20)),
                Value::Str(random::a_string(rng, 10, 20)),
                Value::Str(random::a_string(rng, 10, 20)),
                Value::Str(random::a_string(rng, 2, 2)),
                Value::Str(random::zip(rng)),
                Value::Str(random::n_string(rng, 16, 16)),
                Value::Str("20151001000000".into()),
                Value::Str(credit.into()),
                Value::Float(50_000.0),
                Value::Float(random::uniform(rng, 0, 5000) as f64 / 10_000.0),
                Value::Float(-10.0),
                Value::Float(10.0),
                Value::Int(1),
                Value::Int(0),
                Value::Str(random::a_string(rng, 300, 500)),
            ];
            db.insert(
                txn,
                "CUSTOMER",
                &rec,
                &[
                    ("C_IDX", schema::customer_key(w_id, d_id, c_id)),
                    ("C_NAME_IDX", schema::customer_name_key(w_id, d_id, &last, c_id)),
                ],
            )?;
            stats.bump("CUSTOMER");

            let hist: Record = vec![
                Value::Int(c_id),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::Str("20151001000000".into()),
                Value::Float(10.0),
                Value::Str(random::a_string(rng, 12, 24)),
            ];
            db.insert(txn, "HISTORY", &hist, &[])?;
            stats.bump("HISTORY");
        }

        // Initial orders: customers are assigned via a random permutation.
        let mut perm: Vec<i64> = (1..=s.customers_per_district).collect();
        for i in (1..perm.len()).rev() {
            let j = random::uniform(rng, 0, i as i64) as usize;
            perm.swap(i, j);
        }
        let new_order_start =
            s.initial_orders_per_district - (s.initial_orders_per_district * 30 / 100) + 1;
        for o_id in 1..=s.initial_orders_per_district {
            let c_id = perm[(o_id - 1) as usize % perm.len()];
            let ol_cnt = random::uniform(rng, 5, 15);
            let is_new = o_id >= new_order_start;
            let carrier = if is_new { 0 } else { random::uniform(rng, 1, 10) };
            let order: Record = vec![
                Value::Int(o_id),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::Int(c_id),
                Value::Str("20151001000000".into()),
                Value::Int(carrier),
                Value::Int(ol_cnt),
                Value::Int(1),
            ];
            db.insert(
                txn,
                "ORDER",
                &order,
                &[
                    ("O_IDX", schema::order_key(w_id, d_id, o_id)),
                    ("O_CUST_IDX", schema::order_customer_key(w_id, d_id, c_id, o_id)),
                ],
            )?;
            stats.bump("ORDER");
            for ol_number in 1..=ol_cnt {
                let i_id = random::uniform(rng, 1, s.items);
                let (delivery_d, amount) = if is_new {
                    ("".to_string(), random::uniform(rng, 1, 999_999) as f64 / 100.0)
                } else {
                    ("20151001000000".to_string(), 0.0)
                };
                let ol: Record = vec![
                    Value::Int(o_id),
                    Value::Int(d_id),
                    Value::Int(w_id),
                    Value::Int(ol_number),
                    Value::Int(i_id),
                    Value::Int(w_id),
                    Value::Str(delivery_d),
                    Value::Int(5),
                    Value::Float(amount),
                    Value::Str(random::a_string(rng, 24, 24)),
                ];
                db.insert(
                    txn,
                    "ORDERLINE",
                    &ol,
                    &[("OL_IDX", schema::orderline_key(w_id, d_id, o_id, ol_number))],
                )?;
                stats.bump("ORDERLINE");
            }
            if is_new {
                let no: Record = vec![Value::Int(o_id), Value::Int(d_id), Value::Int(w_id)];
                db.insert(
                    txn,
                    "NEW_ORDER",
                    &no,
                    &[("NO_IDX", schema::new_order_key(w_id, d_id, o_id))],
                )?;
                stats.bump("NEW_ORDER");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbms_engine::{DatabaseConfig, NoFtlBackend};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use noftl_core::{NoFtl, NoFtlConfig};
    use std::sync::Arc;

    fn open_db() -> Database {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
        );
        let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
        let backend =
            Arc::new(NoFtlBackend::new(noftl, &crate::placement::traditional(8)).unwrap());
        Database::open(backend, DatabaseConfig { buffer_pages: 512, ..Default::default() }).unwrap()
    }

    #[test]
    fn scale_presets() {
        let full = ScaleConfig::full(2);
        assert_eq!(full.items, 100_000);
        assert_eq!(full.total_customers(), 60_000);
        assert!(full.approximate_rows() > 500_000);
        let small = ScaleConfig::small(1);
        assert!(small.approximate_rows() < full.approximate_rows());
        assert_eq!(ScaleConfig::full(0).warehouses, 1, "clamped to at least one warehouse");
    }

    #[test]
    fn tiny_load_produces_expected_cardinalities() {
        let db = open_db();
        let scale = ScaleConfig::tiny();
        let loader = Loader::new(scale, 7);
        let (stats, done) = loader.load(&db, SimTime::ZERO).unwrap();
        assert_eq!(stats.rows["ITEM"], scale.items as u64);
        assert_eq!(stats.rows["WAREHOUSE"], 1);
        assert_eq!(stats.rows["DISTRICT"], scale.districts_per_warehouse as u64);
        assert_eq!(
            stats.rows["CUSTOMER"],
            (scale.districts_per_warehouse * scale.customers_per_district) as u64
        );
        assert_eq!(stats.rows["STOCK"], scale.items as u64);
        assert_eq!(
            stats.rows["ORDER"],
            (scale.districts_per_warehouse * scale.initial_orders_per_district) as u64
        );
        assert_eq!(stats.rows["HISTORY"], stats.rows["CUSTOMER"]);
        // 30 % of the initial orders are still undelivered.
        assert_eq!(stats.rows["NEW_ORDER"], 6);
        assert!(stats.rows["ORDERLINE"] >= 5 * stats.rows["ORDER"]);
        assert!(stats.total_rows() > 0);
        assert!(done >= SimTime::ZERO);

        // Spot-check: customer 1 of district 1 is retrievable through its index.
        let mut txn = db.begin(done);
        let (_, rec) = db
            .index_get(&mut txn, "CUSTOMER", "C_IDX", &schema::customer_key(1, 1, 1))
            .unwrap()
            .expect("customer 1-1-1 exists");
        assert_eq!(rec[0], Value::Int(1));
        assert_eq!(rec[5].as_str().unwrap(), "BARBARBAR");
        // District next order id reflects the initial orders.
        let (_, d) = db
            .index_get(&mut txn, "DISTRICT", "D_IDX", &schema::district_key(1, 1))
            .unwrap()
            .expect("district 1-1 exists");
        assert_eq!(d[10], Value::Int(scale.initial_orders_per_district + 1));
    }
}
