//! # tpcc-workload — TPC-C on the NoFTL storage stack
//!
//! The paper's evaluation runs TPC-C under Shore-MT on a 64-die native
//! flash device and compares two data-placement configurations (its
//! Figures 2 and 3).  This crate provides everything needed to repeat
//! that experiment on the `dbms-engine` + `noftl-core` + `flash-sim`
//! stack:
//!
//! * the TPC-C **schema** with the exact object names used in the paper's
//!   Figure 2 (`ORDERLINE`, `STOCK`, `OL_IDX`, `C_NAME_IDX`, ...);
//! * a **loader** with configurable scale ([`ScaleConfig`]);
//! * the five **transactions** (NewOrder, Payment, OrderStatus, Delivery,
//!   StockLevel) with the standard mix and input distributions (NURand,
//!   last-name generation, 1 % rolled-back NewOrders);
//! * a **closed-loop driver** that runs N logical clients over simulated
//!   time and reports throughput, per-transaction response times and all
//!   device-level counters of the paper's Figure 3;
//! * the **placement configurations**: traditional (one region over all
//!   dies) and the paper's six-region assignment ([`placement::figure2`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod loader;
pub mod placement;
pub mod random;
pub mod report;
pub mod schema;
pub mod transactions;

pub use driver::{Driver, DriverConfig, TxnMix, TxnType};
pub use loader::{LoadStats, Loader, ScaleConfig};
pub use placement::{figure2, traditional};
pub use report::{ComparisonReport, RunReport, TxnTypeStats};
pub use schema::{object_names, table_names};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn figure2_covers_all_objects() {
        let cfg = figure2(64);
        assert_eq!(cfg.total_dies(), 64);
        for name in object_names() {
            assert!(
                cfg.region_of(&name).is_some(),
                "object {name} is missing from the Figure 2 placement"
            );
        }
    }
}
