//! TPC-C input generation: NURand, last names, random strings.

use rand::rngs::StdRng;
use rand::Rng;

/// The C constants used by NURand; fixed values keep runs reproducible.
/// `C_LAST` drives the last-name distribution used by Payment/OrderStatus.
pub const C_LAST: i64 = 123;
/// NURand C constant for customer ids.
pub const C_CUST_ID: i64 = 259;
/// NURand C constant for item ids.
pub const C_ITEM_ID: i64 = 7911;

/// Uniform random integer in `[lo, hi]` (inclusive).
pub fn uniform(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    if lo >= hi {
        return lo;
    }
    rng.random_range(lo..=hi)
}

/// The TPC-C non-uniform random distribution:
/// `NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x`.
pub fn nurand(rng: &mut StdRng, a: i64, c: i64, x: i64, y: i64) -> i64 {
    (((uniform(rng, 0, a) | uniform(rng, x, y)) + c) % (y - x + 1)) + x
}

/// Non-uniform customer id in `[1, customers]`.
pub fn nurand_customer_id(rng: &mut StdRng, customers: i64) -> i64 {
    nurand(rng, 1023, C_CUST_ID, 1, customers.max(1))
}

/// Non-uniform item id in `[1, items]`.
pub fn nurand_item_id(rng: &mut StdRng, items: i64) -> i64 {
    nurand(rng, 8191, C_ITEM_ID, 1, items.max(1))
}

/// The TPC-C last-name syllables.
const SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Build the last name for a number in `[0, 999]`.
pub fn last_name(num: i64) -> String {
    let num = num.clamp(0, 999);
    format!(
        "{}{}{}",
        SYLLABLES[(num / 100) as usize],
        SYLLABLES[((num / 10) % 10) as usize],
        SYLLABLES[(num % 10) as usize]
    )
}

/// A random last name for transaction input (NURand(255) over [0, 999]).
pub fn random_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, C_LAST, 0, 999))
}

/// Random alphanumeric string with length in `[lo, hi]`.
pub fn a_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = uniform(rng, lo as i64, hi as i64) as usize;
    (0..len).map(|_| CHARS[rng.random_range(0..CHARS.len())] as char).collect()
}

/// Random numeric string with length in `[lo, hi]`.
pub fn n_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = uniform(rng, lo as i64, hi as i64) as usize;
    (0..len).map(|_| char::from(b'0' + rng.random_range(0..10) as u8)).collect()
}

/// Random zip code: 4 digits followed by "11111".
pub fn zip(rng: &mut StdRng) -> String {
    format!("{}11111", n_string(rng, 4, 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = uniform(&mut r, 3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(uniform(&mut r, 5, 5), 5);
        assert_eq!(uniform(&mut r, 7, 3), 7, "degenerate range returns lo");
    }

    #[test]
    fn nurand_stays_in_range_and_skews() {
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            let v = nurand(&mut r, 1023, C_CUST_ID, 1, 100);
            assert!((1..=100).contains(&v));
            counts[v as usize] += 1;
        }
        // Non-uniform: the most popular value should be clearly more common
        // than the least popular one.
        let max = counts.iter().skip(1).max().unwrap();
        let min = counts.iter().skip(1).min().unwrap();
        assert!(max > &(min + 50), "distribution should be skewed (max={max}, min={min})");
    }

    #[test]
    fn last_names_follow_the_syllable_table() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(-5), "BARBARBAR", "clamped");
        assert_eq!(last_name(5000), "EINGEINGEING", "clamped");
        let mut r = rng();
        let name = random_last_name(&mut r);
        assert!(name.len() >= 9 && name.len() <= 15);
    }

    #[test]
    fn string_generators_respect_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let s = a_string(&mut r, 8, 16);
            assert!(s.len() >= 8 && s.len() <= 16);
            let n = n_string(&mut r, 4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.chars().all(|c| c.is_ascii_digit()));
        }
        assert_eq!(zip(&mut r).len(), 9);
    }

    #[test]
    fn helpers_for_customer_and_item_ids() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!((1..=3000).contains(&nurand_customer_id(&mut r, 3000)));
            assert!((1..=100_000).contains(&nurand_item_id(&mut r, 100_000)));
        }
        // Tiny domains do not panic.
        assert_eq!(nurand_customer_id(&mut r, 1), 1);
    }
}
