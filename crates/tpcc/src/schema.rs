//! TPC-C schema: tables, indexes and helper key builders.
//!
//! Object names follow the paper's Figure 2 exactly, so a placement
//! configuration can be written directly against them:
//! `WAREHOUSE`, `DISTRICT`, `CUSTOMER`, `HISTORY`, `NEW_ORDER`, `ORDER`,
//! `ORDERLINE`, `ITEM`, `STOCK` and the indexes `W_IDX`, `D_IDX`, `C_IDX`,
//! `C_NAME_IDX`, `I_IDX`, `S_IDX`, `O_IDX`, `O_CUST_IDX`, `NO_IDX`,
//! `OL_IDX` (plus the engine's own `DBMS-metadata` and `DBMS-log`).

use dbms_engine::value::{composite_key, composite_key_with_str};
use dbms_engine::{ColumnType, Database, Schema};
use flash_sim::SimTime;

/// Width of the padded last-name component in `C_NAME_IDX` keys.
pub const LAST_NAME_KEY_PAD: usize = 16;

/// Names of all TPC-C tables (heap objects).
pub fn table_names() -> Vec<String> {
    [
        "WAREHOUSE",
        "DISTRICT",
        "CUSTOMER",
        "HISTORY",
        "NEW_ORDER",
        "ORDER",
        "ORDERLINE",
        "ITEM",
        "STOCK",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Names of all TPC-C indexes.
pub fn index_names() -> Vec<String> {
    [
        "W_IDX",
        "D_IDX",
        "C_IDX",
        "C_NAME_IDX",
        "I_IDX",
        "S_IDX",
        "O_IDX",
        "O_CUST_IDX",
        "NO_IDX",
        "OL_IDX",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// All storage object names the workload creates (tables, indexes and the
/// engine's metadata/log objects).
pub fn object_names() -> Vec<String> {
    let mut names = table_names();
    names.extend(index_names());
    names.push(dbms_engine::db::METADATA_OBJECT.to_string());
    names.push(dbms_engine::db::LOG_OBJECT.to_string());
    names
}

/// Which table each index belongs to.
pub fn index_table(index: &str) -> &'static str {
    match index {
        "W_IDX" => "WAREHOUSE",
        "D_IDX" => "DISTRICT",
        "C_IDX" | "C_NAME_IDX" => "CUSTOMER",
        "I_IDX" => "ITEM",
        "S_IDX" => "STOCK",
        "O_IDX" | "O_CUST_IDX" => "ORDER",
        "NO_IDX" => "NEW_ORDER",
        "OL_IDX" => "ORDERLINE",
        other => panic!("unknown index {other}"),
    }
}

/// Schema of the WAREHOUSE table.
pub fn warehouse_schema() -> Schema {
    Schema::new(vec![
        ("w_id", ColumnType::Int),
        ("w_name", ColumnType::Str(10)),
        ("w_street_1", ColumnType::Str(20)),
        ("w_street_2", ColumnType::Str(20)),
        ("w_city", ColumnType::Str(20)),
        ("w_state", ColumnType::Str(2)),
        ("w_zip", ColumnType::Str(9)),
        ("w_tax", ColumnType::Float),
        ("w_ytd", ColumnType::Float),
    ])
}

/// Schema of the DISTRICT table.
pub fn district_schema() -> Schema {
    Schema::new(vec![
        ("d_id", ColumnType::Int),
        ("d_w_id", ColumnType::Int),
        ("d_name", ColumnType::Str(10)),
        ("d_street_1", ColumnType::Str(20)),
        ("d_street_2", ColumnType::Str(20)),
        ("d_city", ColumnType::Str(20)),
        ("d_state", ColumnType::Str(2)),
        ("d_zip", ColumnType::Str(9)),
        ("d_tax", ColumnType::Float),
        ("d_ytd", ColumnType::Float),
        ("d_next_o_id", ColumnType::Int),
    ])
}

/// Schema of the CUSTOMER table (the paper-era 655-byte row, dominated by
/// the 500-byte `c_data` field).
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        ("c_id", ColumnType::Int),
        ("c_d_id", ColumnType::Int),
        ("c_w_id", ColumnType::Int),
        ("c_first", ColumnType::Str(16)),
        ("c_middle", ColumnType::Str(2)),
        ("c_last", ColumnType::Str(16)),
        ("c_street_1", ColumnType::Str(20)),
        ("c_street_2", ColumnType::Str(20)),
        ("c_city", ColumnType::Str(20)),
        ("c_state", ColumnType::Str(2)),
        ("c_zip", ColumnType::Str(9)),
        ("c_phone", ColumnType::Str(16)),
        ("c_since", ColumnType::Str(14)),
        ("c_credit", ColumnType::Str(2)),
        ("c_credit_lim", ColumnType::Float),
        ("c_discount", ColumnType::Float),
        ("c_balance", ColumnType::Float),
        ("c_ytd_payment", ColumnType::Float),
        ("c_payment_cnt", ColumnType::Int),
        ("c_delivery_cnt", ColumnType::Int),
        ("c_data", ColumnType::Str(500)),
    ])
}

/// Schema of the HISTORY table.
pub fn history_schema() -> Schema {
    Schema::new(vec![
        ("h_c_id", ColumnType::Int),
        ("h_c_d_id", ColumnType::Int),
        ("h_c_w_id", ColumnType::Int),
        ("h_d_id", ColumnType::Int),
        ("h_w_id", ColumnType::Int),
        ("h_date", ColumnType::Str(14)),
        ("h_amount", ColumnType::Float),
        ("h_data", ColumnType::Str(24)),
    ])
}

/// Schema of the NEW_ORDER table.
pub fn new_order_schema() -> Schema {
    Schema::new(vec![
        ("no_o_id", ColumnType::Int),
        ("no_d_id", ColumnType::Int),
        ("no_w_id", ColumnType::Int),
    ])
}

/// Schema of the ORDER table.
pub fn order_schema() -> Schema {
    Schema::new(vec![
        ("o_id", ColumnType::Int),
        ("o_d_id", ColumnType::Int),
        ("o_w_id", ColumnType::Int),
        ("o_c_id", ColumnType::Int),
        ("o_entry_d", ColumnType::Str(14)),
        ("o_carrier_id", ColumnType::Int),
        ("o_ol_cnt", ColumnType::Int),
        ("o_all_local", ColumnType::Int),
    ])
}

/// Schema of the ORDERLINE table.
pub fn orderline_schema() -> Schema {
    Schema::new(vec![
        ("ol_o_id", ColumnType::Int),
        ("ol_d_id", ColumnType::Int),
        ("ol_w_id", ColumnType::Int),
        ("ol_number", ColumnType::Int),
        ("ol_i_id", ColumnType::Int),
        ("ol_supply_w_id", ColumnType::Int),
        ("ol_delivery_d", ColumnType::Str(14)),
        ("ol_quantity", ColumnType::Int),
        ("ol_amount", ColumnType::Float),
        ("ol_dist_info", ColumnType::Str(24)),
    ])
}

/// Schema of the ITEM table.
pub fn item_schema() -> Schema {
    Schema::new(vec![
        ("i_id", ColumnType::Int),
        ("i_im_id", ColumnType::Int),
        ("i_name", ColumnType::Str(24)),
        ("i_price", ColumnType::Float),
        ("i_data", ColumnType::Str(50)),
    ])
}

/// Schema of the STOCK table.
pub fn stock_schema() -> Schema {
    let mut cols: Vec<(&str, ColumnType)> = vec![
        ("s_i_id", ColumnType::Int),
        ("s_w_id", ColumnType::Int),
        ("s_quantity", ColumnType::Int),
    ];
    // The ten 24-byte district info strings of the spec.
    cols.extend([
        ("s_dist_01", ColumnType::Str(24)),
        ("s_dist_02", ColumnType::Str(24)),
        ("s_dist_03", ColumnType::Str(24)),
        ("s_dist_04", ColumnType::Str(24)),
        ("s_dist_05", ColumnType::Str(24)),
        ("s_dist_06", ColumnType::Str(24)),
        ("s_dist_07", ColumnType::Str(24)),
        ("s_dist_08", ColumnType::Str(24)),
        ("s_dist_09", ColumnType::Str(24)),
        ("s_dist_10", ColumnType::Str(24)),
    ]);
    cols.extend([
        ("s_ytd", ColumnType::Float),
        ("s_order_cnt", ColumnType::Int),
        ("s_remote_cnt", ColumnType::Int),
        ("s_data", ColumnType::Str(50)),
    ]);
    Schema::new(cols)
}

/// Create all TPC-C tables and indexes in `db`.
pub fn create_schema(db: &Database, now: SimTime) -> dbms_engine::Result<()> {
    db.create_table("WAREHOUSE", warehouse_schema(), now)?;
    db.create_table("DISTRICT", district_schema(), now)?;
    db.create_table("CUSTOMER", customer_schema(), now)?;
    db.create_table("HISTORY", history_schema(), now)?;
    db.create_table("NEW_ORDER", new_order_schema(), now)?;
    db.create_table("ORDER", order_schema(), now)?;
    db.create_table("ORDERLINE", orderline_schema(), now)?;
    db.create_table("ITEM", item_schema(), now)?;
    db.create_table("STOCK", stock_schema(), now)?;
    for index in index_names() {
        db.create_index(index_table(&index), &index, now)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Key builders
// ---------------------------------------------------------------------

/// Key of `W_IDX`: (w_id).
pub fn warehouse_key(w_id: i64) -> Vec<u8> {
    composite_key(&[w_id])
}

/// Key of `D_IDX`: (w_id, d_id).
pub fn district_key(w_id: i64, d_id: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id])
}

/// Key of `C_IDX`: (w_id, d_id, c_id).
pub fn customer_key(w_id: i64, d_id: i64, c_id: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id, c_id])
}

/// Key of `C_NAME_IDX`: (w_id, d_id, c_last, c_id).
pub fn customer_name_key(w_id: i64, d_id: i64, c_last: &str, c_id: i64) -> Vec<u8> {
    let mut key = composite_key_with_str(&[w_id, d_id], c_last, LAST_NAME_KEY_PAD);
    key.extend_from_slice(&composite_key(&[c_id]));
    key
}

/// Prefix of `C_NAME_IDX` covering every customer with a given last name.
pub fn customer_name_prefix(w_id: i64, d_id: i64, c_last: &str) -> Vec<u8> {
    composite_key_with_str(&[w_id, d_id], c_last, LAST_NAME_KEY_PAD)
}

/// Key of `I_IDX`: (i_id).
pub fn item_key(i_id: i64) -> Vec<u8> {
    composite_key(&[i_id])
}

/// Key of `S_IDX`: (w_id, i_id).
pub fn stock_key(w_id: i64, i_id: i64) -> Vec<u8> {
    composite_key(&[w_id, i_id])
}

/// Key of `O_IDX`: (w_id, d_id, o_id).
pub fn order_key(w_id: i64, d_id: i64, o_id: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id, o_id])
}

/// Key of `O_CUST_IDX`: (w_id, d_id, c_id, o_id).
pub fn order_customer_key(w_id: i64, d_id: i64, c_id: i64, o_id: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id, c_id, o_id])
}

/// Key of `NO_IDX`: (w_id, d_id, o_id).
pub fn new_order_key(w_id: i64, d_id: i64, o_id: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id, o_id])
}

/// Key of `OL_IDX`: (w_id, d_id, o_id, ol_number).
pub fn orderline_key(w_id: i64, d_id: i64, o_id: i64, ol_number: i64) -> Vec<u8> {
    composite_key(&[w_id, d_id, o_id, ol_number])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_realistic_row_sizes() {
        // Approximate sizes from the TPC-C specification (bytes).
        assert!(customer_schema().record_len() >= 600, "customer row should be ~655 bytes");
        assert!(stock_schema().record_len() >= 300, "stock row should be ~306 bytes");
        assert!(orderline_schema().record_len() <= 120, "orderline rows are small");
        assert!(new_order_schema().record_len() <= 32);
        assert!(item_schema().record_len() >= 80);
    }

    #[test]
    fn every_index_maps_to_a_table() {
        for index in index_names() {
            let table = index_table(&index);
            assert!(table_names().contains(&table.to_string()));
        }
        assert_eq!(object_names().len(), 9 + 10 + 2);
    }

    #[test]
    #[should_panic(expected = "unknown index")]
    fn unknown_index_panics() {
        index_table("NOT_AN_INDEX");
    }

    #[test]
    fn composite_keys_order_correctly() {
        assert!(order_key(1, 1, 5) < order_key(1, 1, 6));
        assert!(order_key(1, 1, 99) < order_key(1, 2, 1));
        assert!(customer_name_key(1, 1, "ABLE", 3) < customer_name_key(1, 1, "BAKER", 1));
        // The last-name prefix covers the full key.
        let prefix = customer_name_prefix(1, 1, "ABLE");
        let full = customer_name_key(1, 1, "ABLE", 42);
        assert!(full.starts_with(&prefix));
    }
}
