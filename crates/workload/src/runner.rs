//! Closed-loop YCSB execution: load phase, run phase, latency capture.

use flash_sim::SimTime;
use noftl_obs::{Histogram, MetricsRegistry, Unit};

use crate::backend::{Result, WorkloadBackend};
use crate::ycsb::{stream_digest, Op, OpKind, YcsbSpec};

/// Latency/throughput summary of one workload run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload tag (e.g. `"A"`).
    pub workload: &'static str,
    /// Backend tag (`"kv"` / `"btree"`).
    pub backend: &'static str,
    /// Operations executed.
    pub ops: u64,
    /// Rows touched by scans (scans count as one op each).
    pub rows_scanned: u64,
    /// Simulated duration of the run phase.
    pub elapsed: SimTime,
    /// Simulated throughput in thousands of ops per simulated second.
    pub throughput_kops: f64,
    /// Median per-op simulated latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile per-op simulated latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile per-op simulated latency, microseconds.
    pub p999_us: f64,
    /// Worst per-op simulated latency, microseconds.
    pub max_us: f64,
    /// Order-sensitive digest of the consumed op stream; equal digests
    /// mean two runs replayed identical streams.
    pub stream_digest: u64,
}

/// Quantiles pulled out of a recorded histogram, in microseconds:
/// `(p50, p99, p999, max)` — the max is tracked exactly.
pub(crate) fn quantiles_us(hist: &Histogram) -> (f64, f64, f64, f64) {
    let snap = hist.snapshot();
    let q = |p: f64| snap.percentile(p) as f64 / 1e3;
    (q(0.5), q(0.99), q(0.999), if snap.count == 0 { 0.0 } else { snap.max as f64 / 1e3 })
}

/// Load `spec.record_count` ordered records through `backend`, returning
/// the completion time of the load (including the durability flush).
pub fn load_phase(spec: &YcsbSpec, backend: &dyn WorkloadBackend, at: SimTime) -> Result<SimTime> {
    let mut t = at;
    for id in 0..spec.record_count {
        t = backend.insert(&spec.key(id), &spec.value_for(id), t)?;
    }
    backend.flush(t)
}

/// Execute one already-generated `op` at `at`; returns `(rows, completion)`.
pub(crate) fn execute_op(
    backend: &dyn WorkloadBackend,
    spec: &YcsbSpec,
    op: &Op,
    at: SimTime,
) -> Result<(u64, SimTime)> {
    Ok(match op.kind {
        OpKind::Read => {
            let (_, t) = backend.read(&spec.key(op.key), at)?;
            (0, t)
        }
        OpKind::Update => (0, backend.update(&spec.key(op.key), &spec.value_for(op.key), at)?),
        OpKind::Insert => (0, backend.insert(&spec.key(op.key), &spec.value_for(op.key), at)?),
        OpKind::Scan => {
            let (rows, t) = backend.scan(&spec.key(op.key), op.scan_len as usize, at)?;
            (rows as u64, t)
        }
        OpKind::ReadModifyWrite => {
            let (_, t) = backend.read(&spec.key(op.key), at)?;
            (0, backend.update(&spec.key(op.key), &spec.value_for(op.key), t)?)
        }
        OpKind::Delete => (0, backend.delete(&spec.key(op.key), at)?),
    })
}

/// Run `spec` against `backend` closed-loop (each op issues at the
/// previous op's completion — the as-fast-as-possible YCSB client).
///
/// The load phase must already have happened (see [`load_phase`]).
/// Per-op simulated latencies are recorded into
/// `workload.<spec>.<backend>.op_latency_ns` on `registry`, and the
/// report's percentiles are read back from that histogram.
pub fn run_ycsb(
    spec: &YcsbSpec,
    backend: &dyn WorkloadBackend,
    registry: &MetricsRegistry,
    at: SimTime,
) -> Result<RunReport> {
    let hist = registry.histogram(
        &format!(
            "workload.ycsb_{}.{}.op_latency_ns",
            spec.name.to_ascii_lowercase(),
            backend.tag()
        ),
        Unit::SimNanos,
    );
    let mut now = at;
    let mut ops = 0u64;
    let mut rows_scanned = 0u64;
    let mut digest_ops: Vec<Op> = Vec::with_capacity(spec.op_count as usize);
    for op in spec.stream() {
        let issue = now;
        let (rows, done) = execute_op(backend, spec, &op, issue)?;
        rows_scanned += rows;
        now = now.max(done);
        hist.record(now.as_nanos().saturating_sub(issue.as_nanos()));
        ops += 1;
        digest_ops.push(op);
    }
    let elapsed = SimTime(now.as_nanos().saturating_sub(at.as_nanos()));
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let (p50_us, p99_us, p999_us, max_us) = quantiles_us(&hist);
    Ok(RunReport {
        workload: spec.name,
        backend: backend.tag(),
        ops,
        rows_scanned,
        elapsed,
        throughput_kops: ops as f64 / secs / 1e3,
        p50_us,
        p99_us,
        p999_us,
        max_us,
        stream_digest: stream_digest(digest_ops),
    })
}
