//! The `noftl-trace v1` text format: a rate-controlled issue schedule.
//!
//! A trace is an *open-loop* schedule — every line carries the simulated
//! instant the operation must be issued at, independent of how long the
//! previous operation takes.  That is the honest way to measure tail
//! latency under load: a slow device does not get to slow the client
//! down (coordinated omission).
//!
//! Format, one op per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # noftl-trace v1
//! <issue_us> <R|U|I|S|M> <key> [<scan_len>]
//! ```
//!
//! `issue_us` is the issue instant in simulated microseconds from the
//! start of the replay; `key` is any whitespace-free byte string
//! (generated traces use `user<12 digits>`); `scan_len` is required for
//! `S` lines and forbidden otherwise.

use flash_sim::SimTime;

use crate::backend::WorkloadError;
use crate::rng::KeyedRng;
use crate::ycsb::{key_bytes, Op, OpKind, YcsbSpec};

/// Magic first line of a rendered trace.
pub const TRACE_HEADER: &str = "# noftl-trace v1";

/// One scheduled operation of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// Issue instant relative to the replay start.
    pub at: SimTime,
    /// Operation kind.
    pub kind: OpKind,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Rows for a scan (0 otherwise).
    pub scan_len: u32,
}

/// Parse a trace text; fails loudly on any malformed line.
pub fn parse(text: &str) -> Result<Vec<TraceOp>, WorkloadError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err =
            |what: &str| WorkloadError(format!("trace line {}: {what}: '{line}'", lineno + 1));
        let mut parts = line.split_whitespace();
        let at_us: u64 = parts
            .next()
            .ok_or_else(|| err("missing issue time"))?
            .parse()
            .map_err(|_| err("bad issue time"))?;
        let code = parts.next().ok_or_else(|| err("missing op code"))?;
        let kind = code
            .chars()
            .next()
            .filter(|_| code.len() == 1)
            .and_then(OpKind::from_code)
            .ok_or_else(|| err("bad op code"))?;
        let key = parts.next().ok_or_else(|| err("missing key"))?.as_bytes().to_vec();
        let scan_len = match (kind, parts.next()) {
            (OpKind::Scan, Some(n)) => n.parse().map_err(|_| err("bad scan length"))?,
            (OpKind::Scan, None) => return Err(err("scan line missing length")),
            (_, Some(_)) => return Err(err("unexpected trailing field")),
            (_, None) => 0,
        };
        if parts.next().is_some() {
            return Err(err("unexpected trailing field"));
        }
        out.push(TraceOp { at: SimTime(at_us * 1_000), kind, key, scan_len });
    }
    Ok(out)
}

/// Render ops back into trace text (the inverse of [`parse`] for
/// microsecond-aligned instants).
pub fn render(ops: &[TraceOp]) -> String {
    let mut out = String::from(TRACE_HEADER);
    out.push('\n');
    for op in ops {
        let key = String::from_utf8_lossy(&op.key);
        let us = op.at.as_nanos() / 1_000;
        match op.kind {
            OpKind::Scan => {
                out.push_str(&format!("{us} S {key} {}\n", op.scan_len));
            }
            k => out.push_str(&format!("{us} {} {key}\n", k.code())),
        }
    }
    out
}

/// Expand a YCSB spec into an open-loop trace issuing at a fixed
/// `rate_kops` (thousands of ops per simulated second).  The schedule is
/// deterministic: op `i` issues at `i / rate`.
pub fn from_spec(spec: &YcsbSpec, rate_kops: f64) -> Vec<TraceOp> {
    let interval_ns = (1e6 / rate_kops.max(1e-9)).max(1.0) as u64;
    spec.stream()
        .enumerate()
        .map(|(i, op)| TraceOp {
            at: SimTime(i as u64 * interval_ns),
            kind: op.kind,
            key: spec.key(op.key),
            scan_len: op.scan_len,
        })
        .collect()
}

/// A deterministic synthetic block-trace stand-in: point ops with
/// exponential-ish jittered interarrivals around `rate_kops`, keyed
/// uniformly over `keys`.  Used by tests and the example so replay has a
/// non-YCSB-shaped input too.
pub fn synthetic(ops: u64, keys: u64, rate_kops: f64, seed: u64) -> Vec<TraceOp> {
    let mut rng = KeyedRng::new(seed, "synthetic-trace");
    let mean_ns = (1e6 / rate_kops.max(1e-9)).max(1.0);
    let mut at = 0u64;
    (0..ops)
        .map(|i| {
            // Bounded jitter in [0.5, 1.5) of the mean keeps the schedule
            // deterministic yet bursty enough to exercise queueing.
            let gap = (mean_ns * (0.5 + rng.next_f64())) as u64;
            at += gap.max(1);
            let kind = if i % 4 == 3 { OpKind::Update } else { OpKind::Read };
            TraceOp { at: SimTime(at), kind, key: key_bytes(rng.below(keys)), scan_len: 0 }
        })
        .collect()
}

/// Convert a generated [`Op`] stream item into a trace op at an instant.
pub fn trace_op(op: Op, at: SimTime) -> TraceOp {
    TraceOp { at, kind: op.kind, key: key_bytes(op.key), scan_len: op.scan_len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let text = "\
# noftl-trace v1
# a comment

0 R user000000000001
250 U user000000000002
500 S user000000000003 25
750 I user000000000099
900 M user000000000001
";
        let ops = parse(text).unwrap();
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[2].kind, OpKind::Scan);
        assert_eq!(ops[2].scan_len, 25);
        assert_eq!(ops[1].at, SimTime(250_000));
        let rendered = render(&ops);
        assert_eq!(parse(&rendered).unwrap(), ops);
    }

    #[test]
    fn malformed_lines_fail_loudly() {
        for bad in [
            "x R user1",      // bad time
            "10 Z user1",     // bad op
            "10 R",           // missing key
            "10 S user1",     // scan without length
            "10 R user1 5",   // trailing field on a non-scan
            "10 S user1 5 9", // extra field
        ] {
            assert!(parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn fixed_rate_schedule_is_open_loop() {
        let spec = YcsbSpec::core('C', 100, 10, 5).unwrap();
        let trace = from_spec(&spec, 10.0); // 10 kops → 100 us apart
        for (i, op) in trace.iter().enumerate() {
            assert_eq!(op.at, SimTime(i as u64 * 100_000));
        }
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_monotone() {
        let a = synthetic(200, 50, 20.0, 9);
        let b = synthetic(200, 50, 20.0, 9);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].at < w[1].at, "issue schedule must be strictly increasing");
        }
    }
}
