//! Rate-controlled open-loop trace replay.
//!
//! Each [`crate::trace::TraceOp`] is issued at its *scheduled*
//! simulated instant, never at the previous op's completion — the device
//! does not get to slow the client down.  Per-op latency is therefore
//! `completion - scheduled issue`, which includes any queueing delay the
//! backlog causes: exactly the number coordinated-omission-free load
//! generators report, and the repo's first committed tail-behavior
//! measurement.

use flash_sim::SimTime;
use noftl_obs::{MetricsRegistry, Unit};

use crate::backend::{Result, WorkloadBackend, WorkloadError};
use crate::runner::quantiles_us;
use crate::trace::TraceOp;
use crate::ycsb::OpKind;

/// Outcome of replaying one trace against one backend.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Operations replayed.
    pub ops: u64,
    /// Operations whose key was missing (reads/scans of absent keys).
    pub misses: u64,
    /// Scheduled duration of the trace (last issue instant).
    pub schedule_end: SimTime,
    /// Completion instant of the last-finishing op.
    pub drained_at: SimTime,
    /// Offered rate over the schedule, thousands of ops per simulated second.
    pub offered_kops: f64,
    /// Achieved rate: ops over the drain duration.
    pub achieved_kops: f64,
    /// Median simulated latency (completion - scheduled issue), microseconds.
    pub p50_us: f64,
    /// 99th percentile simulated latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile simulated latency, microseconds.
    pub p999_us: f64,
    /// Worst simulated latency, microseconds.
    pub max_us: f64,
}

/// Issue one scheduled op at `issue`; returns `(misses, completion)`.
/// Shared by the replayer and the multi-tenant interleaver.
pub(crate) fn issue_trace_op(
    backend: &dyn WorkloadBackend,
    op: &TraceOp,
    value_len: usize,
    issue: SimTime,
) -> Result<(u64, SimTime)> {
    let value = vec![b'v'; value_len];
    Ok(match op.kind {
        OpKind::Read => {
            let (found, t) = backend.read(&op.key, issue)?;
            (u64::from(!found), t)
        }
        OpKind::Update => (0, backend.update(&op.key, &value, issue)?),
        OpKind::Insert => (0, backend.insert(&op.key, &value, issue)?),
        OpKind::Scan => {
            let (rows, t) = backend.scan(&op.key, op.scan_len as usize, issue)?;
            (u64::from(rows == 0), t)
        }
        OpKind::ReadModifyWrite => {
            let (found, t) = backend.read(&op.key, issue)?;
            (u64::from(!found), backend.update(&op.key, &value, t)?)
        }
        OpKind::Delete => (0, backend.delete(&op.key, issue)?),
    })
}

/// Replay `trace` against `backend`, issuing op `i` at `base + trace[i].at`.
///
/// Latencies are recorded into `workload.replay.<label>.op_latency_ns` on
/// `registry` (one histogram per label, merged across calls with the same
/// label).  The trace must be sorted by issue instant; a `value_len` is
/// needed because traces carry no payloads.
pub fn replay(
    trace: &[TraceOp],
    backend: &dyn WorkloadBackend,
    registry: &MetricsRegistry,
    label: &str,
    value_len: usize,
    base: SimTime,
) -> Result<ReplayReport> {
    let hist =
        registry.histogram(&format!("workload.replay.{label}.op_latency_ns"), Unit::SimNanos);
    let mut prev_at = SimTime::ZERO;
    let mut drained = base;
    let mut misses = 0u64;
    for op in trace {
        if op.at < prev_at {
            return Err(WorkloadError(format!(
                "trace not sorted: issue {} after {}",
                op.at.as_nanos(),
                prev_at.as_nanos()
            )));
        }
        prev_at = op.at;
        let issue = SimTime(base.as_nanos() + op.at.as_nanos());
        let (miss, done) = issue_trace_op(backend, op, value_len, issue)?;
        misses += miss;
        drained = drained.max(done);
        hist.record(done.as_nanos().saturating_sub(issue.as_nanos()));
    }
    let ops = trace.len() as u64;
    let schedule_end = prev_at;
    let sched_secs = schedule_end.as_secs_f64().max(f64::MIN_POSITIVE);
    let drain_secs = SimTime(drained.as_nanos().saturating_sub(base.as_nanos()))
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    let (p50_us, p99_us, p999_us, max_us) = quantiles_us(&hist);
    Ok(ReplayReport {
        ops,
        misses,
        schedule_end,
        drained_at: drained,
        offered_kops: ops as f64 / sched_secs / 1e3,
        achieved_kops: ops as f64 / drain_secs / 1e3,
        p50_us,
        p99_us,
        p999_us,
        max_us,
    })
}
