//! Storage backends the workload lab drives.
//!
//! [`WorkloadBackend`] is the five-verb surface every YCSB mix and trace
//! needs — insert, update, point read, bounded scan, flush — expressed in
//! simulated time: every verb takes the issue instant and returns the
//! completion instant, so open-loop replay and latency histograms fall
//! out naturally.  Two implementations ship: [`KvBackend`] over the
//! NoFTL-KV LSM store and [`BtreeBackend`] over the dbms B+-tree, both
//! consuming *identical* key streams (the generators never look at the
//! backend).

use std::fmt;
use std::sync::Arc;

use dbms_engine::{ColumnType, Database, DatabaseConfig, NoFtlBackend, Schema, Value};
use flash_sim::SimTime;
use noftl_core::kv::{KvConfig, KvStore};
use noftl_core::{NoFtl, PlacementConfig, RegionId};

/// Workload-layer error: a backend refused an operation.
#[derive(Debug)]
pub struct WorkloadError(pub String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload error: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

impl From<noftl_core::NoFtlError> for WorkloadError {
    fn from(e: noftl_core::NoFtlError) -> Self {
        WorkloadError(e.to_string())
    }
}

impl From<dbms_engine::DbError> for WorkloadError {
    fn from(e: dbms_engine::DbError) -> Self {
        WorkloadError(e.to_string())
    }
}

/// Workload-layer result.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// The storage surface a workload drives, in simulated time.
pub trait WorkloadBackend {
    /// Short stable tag (`"kv"`, `"btree"`) used in metric names.
    fn tag(&self) -> &'static str;

    /// Insert a brand-new key.
    fn insert(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime>;

    /// Overwrite an existing key (inserts if missing, like a KV upsert).
    fn update(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime>;

    /// Point read; returns whether the key was found.
    fn read(&self, key: &[u8], at: SimTime) -> Result<(bool, SimTime)>;

    /// Remove a key; deleting an absent key is a no-op, not an error.
    fn delete(&self, key: &[u8], at: SimTime) -> Result<SimTime>;

    /// Read up to `limit` rows starting at `start` in key order; returns
    /// the number of rows seen.
    fn scan(&self, start: &[u8], limit: usize, at: SimTime) -> Result<(usize, SimTime)>;

    /// Make everything written so far durable.
    fn flush(&self, at: SimTime) -> Result<SimTime>;
}

/// [`WorkloadBackend`] over the NoFTL-KV store.
pub struct KvBackend {
    store: KvStore,
}

impl KvBackend {
    /// Create a fresh store named `name` in `region`.
    pub fn create(
        noftl: Arc<NoFtl>,
        region: RegionId,
        name: &str,
        config: KvConfig,
        at: SimTime,
    ) -> Result<(Self, SimTime)> {
        let (store, t) = KvStore::create(noftl, region, name, config, at)?;
        Ok((KvBackend { store }, t))
    }

    /// Wrap an existing store.
    pub fn new(store: KvStore) -> Self {
        KvBackend { store }
    }

    /// The wrapped store (for stats).
    pub fn store(&self) -> &KvStore {
        &self.store
    }
}

impl WorkloadBackend for KvBackend {
    fn tag(&self) -> &'static str {
        "kv"
    }

    fn insert(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime> {
        Ok(self.store.put(key, value, at)?)
    }

    fn update(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime> {
        Ok(self.store.put(key, value, at)?)
    }

    fn read(&self, key: &[u8], at: SimTime) -> Result<(bool, SimTime)> {
        let (hit, t) = self.store.get(key, at)?;
        Ok((hit.is_some(), t))
    }

    fn delete(&self, key: &[u8], at: SimTime) -> Result<SimTime> {
        Ok(self.store.delete(key, at)?)
    }

    fn scan(&self, start: &[u8], limit: usize, at: SimTime) -> Result<(usize, SimTime)> {
        let (rows, t) = self.store.scan_limit(Some(start), limit, at)?;
        Ok((rows.len(), t))
    }

    fn flush(&self, at: SimTime) -> Result<SimTime> {
        Ok(self.store.flush(at)?)
    }
}

/// Table/index names the B+-tree backend uses.
const TABLE: &str = "usertable";
const INDEX: &str = "k";

/// [`WorkloadBackend`] over the dbms: a heap table with a B+-tree key
/// index, one transaction per operation (auto-commit, YCSB's model).
pub struct BtreeBackend {
    db: Database,
    value_len: u16,
}

impl BtreeBackend {
    /// Open a database on `noftl` with a `usertable(k, v)` schema sized
    /// for `value_len`-byte values, using `placement` region config.
    pub fn create(
        noftl: Arc<NoFtl>,
        placement: &PlacementConfig,
        config: DatabaseConfig,
        value_len: usize,
        at: SimTime,
    ) -> Result<(Self, SimTime)> {
        let backend = Arc::new(NoFtlBackend::new(noftl, placement)?);
        let db = Database::open(backend, config)?;
        let value_len = u16::try_from(value_len)
            .map_err(|_| WorkloadError(format!("value_len {value_len} exceeds column limit")))?;
        db.create_table(
            TABLE,
            Schema::new(vec![("k", ColumnType::Str(24)), ("v", ColumnType::Str(value_len))]),
            at,
        )?;
        db.create_index(TABLE, INDEX, at)?;
        Ok((BtreeBackend { db, value_len }, at))
    }

    /// The wrapped database (for stats / metrics snapshots).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn record(&self, key: &[u8], value: &[u8]) -> Result<Vec<Value>> {
        let k = String::from_utf8(key.to_vec())
            .map_err(|_| WorkloadError("btree backend requires UTF-8 keys".into()))?;
        let mut v = String::from_utf8(value.to_vec())
            .map_err(|_| WorkloadError("btree backend requires UTF-8 values".into()))?;
        v.truncate(self.value_len as usize);
        Ok(vec![Value::Str(k), Value::Str(v)])
    }
}

impl WorkloadBackend for BtreeBackend {
    fn tag(&self) -> &'static str {
        "btree"
    }

    fn insert(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime> {
        let record = self.record(key, value)?;
        let mut txn = self.db.begin(at);
        self.db.insert(&mut txn, TABLE, &record, &[(INDEX, key.to_vec())])?;
        self.db.commit(&mut txn)?;
        Ok(txn.now)
    }

    fn update(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime> {
        let record = self.record(key, value)?;
        let mut txn = self.db.begin(at);
        match self.db.index_lookup(&mut txn, TABLE, INDEX, key)? {
            Some(rid) => self.db.update(&mut txn, TABLE, rid, &record)?,
            None => {
                self.db.insert(&mut txn, TABLE, &record, &[(INDEX, key.to_vec())])?;
            }
        }
        self.db.commit(&mut txn)?;
        Ok(txn.now)
    }

    fn read(&self, key: &[u8], at: SimTime) -> Result<(bool, SimTime)> {
        let mut txn = self.db.begin(at);
        let found = self.db.index_get(&mut txn, TABLE, INDEX, key)?.is_some();
        self.db.commit(&mut txn)?;
        Ok((found, txn.now))
    }

    fn delete(&self, key: &[u8], at: SimTime) -> Result<SimTime> {
        let mut txn = self.db.begin(at);
        if let Some(rid) = self.db.index_lookup(&mut txn, TABLE, INDEX, key)? {
            self.db.delete(&mut txn, TABLE, rid, &[(INDEX, key.to_vec())])?;
        }
        self.db.commit(&mut txn)?;
        Ok(txn.now)
    }

    fn scan(&self, start: &[u8], limit: usize, at: SimTime) -> Result<(usize, SimTime)> {
        let mut txn = self.db.begin(at);
        let pairs = self.db.index_scan_from(&mut txn, TABLE, INDEX, start, limit)?;
        // YCSB scans fetch the rows, not just the keys.
        let mut rows = 0usize;
        for (_, rid) in &pairs {
            self.db.get(&mut txn, TABLE, *rid)?;
            rows += 1;
        }
        self.db.commit(&mut txn)?;
        Ok((rows, txn.now))
    }

    fn flush(&self, at: SimTime) -> Result<SimTime> {
        Ok(self.db.flush_all(at)?)
    }
}
