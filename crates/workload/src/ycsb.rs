//! The six YCSB core workloads as deterministic operation streams.
//!
//! A [`YcsbSpec`] fixes the op mix, key distribution and sizes; an
//! [`OpStream`] expands it into a concrete sequence of [`Op`]s using only
//! the spec and its seed — never feedback from a backend — so the *same
//! spec always yields the same stream*, no matter which storage engine
//! consumes it.  That is what makes an A-vs-A comparison between
//! NoFTL-KV and the B+-tree honest: both sides replay identical keys in
//! identical order.
//!
//! Keys are loaded in *ordered* mode (`user<12-digit id>`), so scans walk
//! consecutive ids and inserts append at the tail of the key space —
//! YCSB's `insertorder=ordered` setting.

use crate::rng::{fnv64, KeyChooser, KeyDistribution, KeyedRng};

/// One operation kind of the YCSB core mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point read of one key.
    Read,
    /// Overwrite the value of an existing key.
    Update,
    /// Insert a brand-new key at the tail of the key space.
    Insert,
    /// Short range scan starting at a key.
    Scan,
    /// Read a key, then write it back modified.
    ReadModifyWrite,
    /// Remove a key (delete-bearing mix variants only).
    Delete,
}

impl OpKind {
    /// One-letter code used by the trace format.
    pub fn code(self) -> char {
        match self {
            OpKind::Read => 'R',
            OpKind::Update => 'U',
            OpKind::Insert => 'I',
            OpKind::Scan => 'S',
            OpKind::ReadModifyWrite => 'M',
            OpKind::Delete => 'D',
        }
    }

    /// Parse a one-letter trace code.
    pub fn from_code(c: char) -> Option<Self> {
        Some(match c {
            'R' => OpKind::Read,
            'U' => OpKind::Update,
            'I' => OpKind::Insert,
            'S' => OpKind::Scan,
            'M' => OpKind::ReadModifyWrite,
            'D' => OpKind::Delete,
            _ => return None,
        })
    }
}

/// One concrete operation of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// What to do.
    pub kind: OpKind,
    /// Key id (`0..` maps to `user<id>` via [`key_bytes`]).
    pub key: u64,
    /// Number of rows a [`OpKind::Scan`] touches (0 otherwise).
    pub scan_len: u32,
}

/// Render a key id as its on-disk key (`user` + 12 decimal digits, so
/// lexicographic order equals numeric order).
pub fn key_bytes(id: u64) -> Vec<u8> {
    format!("user{id:012}").into_bytes()
}

/// Render a key id in *scrambled* mode: the id is FNV-hashed before
/// rendering, so consecutive ids land at unrelated points of the key
/// space — YCSB's `insertorder=hashed` setting.  Still a pure function
/// of the id, so both backends agree on every key.
pub fn scrambled_key_bytes(id: u64) -> Vec<u8> {
    format!("user{:016x}", fnv64(&id.to_le_bytes())).into_bytes()
}

/// A YCSB workload description.
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Workload tag (`"A"`..`"F"` for the core mixes).
    pub name: &'static str,
    /// Fraction of point reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Fraction of deletes (0 in the core mixes; see
    /// [`YcsbSpec::with_deletes`]).
    pub delete: f64,
    /// Key distribution of reads/updates/scans/rmws.
    pub dist: KeyDistribution,
    /// Records loaded before the run.
    pub record_count: u64,
    /// Operations in the run phase.
    pub op_count: u64,
    /// Value payload bytes per record.
    pub value_len: usize,
    /// Scans touch `1..=max_scan_len` rows (uniform).
    pub max_scan_len: u32,
    /// Stream seed; the whole run is a pure function of the spec.
    pub seed: u64,
    /// Scrambled-key mode: render keys via [`scrambled_key_bytes`]
    /// instead of ordered `user<12 digits>` ids.
    pub scrambled: bool,
}

impl YcsbSpec {
    /// The YCSB core workload `which` ('A'..='F', case-insensitive) sized
    /// to `record_count` records and `op_count` operations.
    pub fn core(which: char, record_count: u64, op_count: u64, seed: u64) -> Option<Self> {
        let zipf = KeyDistribution::Zipfian { theta: 0.99 };
        let spec = match which.to_ascii_uppercase() {
            // A: update heavy — 50/50 read/update, zipfian.
            'A' => YcsbSpec { name: "A", read: 0.5, update: 0.5, ..Self::base(zipf) },
            // B: read mostly — 95/5 read/update, zipfian.
            'B' => YcsbSpec { name: "B", read: 0.95, update: 0.05, ..Self::base(zipf) },
            // C: read only, zipfian.
            'C' => YcsbSpec { name: "C", read: 1.0, ..Self::base(zipf) },
            // D: read latest — 95/5 read/insert, latest distribution.
            'D' => YcsbSpec {
                name: "D",
                read: 0.95,
                insert: 0.05,
                ..Self::base(KeyDistribution::Latest)
            },
            // E: short ranges — 95/5 scan/insert, zipfian start keys.
            'E' => YcsbSpec { name: "E", scan: 0.95, insert: 0.05, ..Self::base(zipf) },
            // F: read-modify-write — 50/50 read/rmw, zipfian.
            'F' => YcsbSpec { name: "F", read: 0.5, rmw: 0.5, ..Self::base(zipf) },
            _ => return None,
        };
        Some(YcsbSpec { record_count, op_count, seed, ..spec })
    }

    fn base(dist: KeyDistribution) -> Self {
        YcsbSpec {
            name: "?",
            read: 0.0,
            update: 0.0,
            insert: 0.0,
            scan: 0.0,
            rmw: 0.0,
            delete: 0.0,
            dist,
            record_count: 1_000,
            op_count: 1_000,
            value_len: 100,
            max_scan_len: 50,
            seed: 0,
            scrambled: false,
        }
    }

    /// Turn this spec into a delete-bearing variant: `fraction` of the
    /// ops become deletes of chooser-picked keys, the original mix is
    /// rescaled to the remainder.
    pub fn with_deletes(mut self, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let keep = 1.0 - fraction;
        self.read *= keep;
        self.update *= keep;
        self.insert *= keep;
        self.scan *= keep;
        self.rmw *= keep;
        self.delete = fraction;
        self
    }

    /// Switch the spec to scrambled (hashed) key rendering.
    pub fn scrambled(mut self) -> Self {
        self.scrambled = true;
        self
    }

    /// Render a key id under this spec's key mode.
    pub fn key(&self, id: u64) -> Vec<u8> {
        if self.scrambled {
            scrambled_key_bytes(id)
        } else {
            key_bytes(id)
        }
    }

    /// Expand the spec into its deterministic operation stream.
    pub fn stream(&self) -> OpStream {
        OpStream {
            ops: KeyedRng::new(self.seed, "op-mix"),
            scans: KeyedRng::new(self.seed, "scan-len"),
            chooser: KeyChooser::new(self.dist, self.record_count, self.seed),
            spec: self.clone(),
            live: self.record_count,
            emitted: 0,
        }
    }

    /// Deterministic value payload for a key: printable ASCII (so it
    /// survives string-typed columns) sized by the spec, tagged with the
    /// key so reads can be sanity-checked.
    pub fn value_for(&self, key: u64) -> Vec<u8> {
        let tag = format!("{key:016x}");
        let mut v = Vec::with_capacity(self.value_len);
        while v.len() < self.value_len {
            let take = (self.value_len - v.len()).min(tag.len());
            v.extend_from_slice(&tag.as_bytes()[..take]);
        }
        v
    }
}

/// Iterator expanding a [`YcsbSpec`] into [`Op`]s.
#[derive(Debug, Clone)]
pub struct OpStream {
    spec: YcsbSpec,
    ops: KeyedRng,
    scans: KeyedRng,
    chooser: KeyChooser,
    live: u64,
    emitted: u64,
}

impl OpStream {
    /// Number of keys live after the ops emitted so far (initial records
    /// plus inserts).
    pub fn live_keys(&self) -> u64 {
        self.live
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.emitted >= self.spec.op_count {
            return None;
        }
        self.emitted += 1;
        let s = &self.spec;
        let d = self.ops.next_f64();
        let op = if d < s.read {
            Op { kind: OpKind::Read, key: self.chooser.next(self.live), scan_len: 0 }
        } else if d < s.read + s.update {
            Op { kind: OpKind::Update, key: self.chooser.next(self.live), scan_len: 0 }
        } else if d < s.read + s.update + s.insert {
            let key = self.live;
            self.live += 1;
            Op { kind: OpKind::Insert, key, scan_len: 0 }
        } else if d < s.read + s.update + s.insert + s.scan {
            let len = 1 + self.scans.below(u64::from(s.max_scan_len.max(1))) as u32;
            Op { kind: OpKind::Scan, key: self.chooser.next(self.live), scan_len: len }
        } else if d < s.read + s.update + s.insert + s.scan + s.delete {
            Op { kind: OpKind::Delete, key: self.chooser.next(self.live), scan_len: 0 }
        } else {
            Op { kind: OpKind::ReadModifyWrite, key: self.chooser.next(self.live), scan_len: 0 }
        };
        Some(op)
    }
}

/// Order-sensitive digest of an op stream — two streams with the same
/// digest replayed the same ops in the same order.  The run reports carry
/// it so cross-backend comparisons can assert they consumed identical
/// streams.
pub fn stream_digest(ops: impl IntoIterator<Item = Op>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for op in ops {
        let mut buf = [0u8; 13];
        buf[0] = op.kind.code() as u8;
        buf[1..9].copy_from_slice(&op.key.to_le_bytes());
        buf[9..13].copy_from_slice(&op.scan_len.to_le_bytes());
        h ^= fnv64(&buf);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_mixes_sum_to_one() {
        for w in ['A', 'B', 'C', 'D', 'E', 'F'] {
            let s = YcsbSpec::core(w, 100, 100, 1).unwrap();
            let total = s.read + s.update + s.insert + s.scan + s.rmw;
            assert!((total - 1.0).abs() < 1e-9, "workload {w} mix sums to {total}");
        }
        assert!(YcsbSpec::core('G', 100, 100, 1).is_none());
    }

    #[test]
    fn stream_is_a_pure_function_of_the_spec() {
        let spec = YcsbSpec::core('A', 500, 2_000, 99).unwrap();
        let a: Vec<Op> = spec.stream().collect();
        let b: Vec<Op> = spec.stream().collect();
        assert_eq!(a, b);
        assert_eq!(stream_digest(a.iter().copied()), stream_digest(b.iter().copied()));
        let other = YcsbSpec { seed: 100, ..spec };
        assert_ne!(
            stream_digest(other.stream()),
            stream_digest(spec.stream()),
            "a different seed must change the stream"
        );
    }

    #[test]
    fn mix_fractions_are_respected() {
        let spec = YcsbSpec::core('B', 1_000, 20_000, 7).unwrap();
        let ops: Vec<Op> = spec.stream().collect();
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count() as f64;
        let frac = reads / ops.len() as f64;
        assert!((frac - 0.95).abs() < 0.02, "read fraction {frac} should be ~0.95");
    }

    #[test]
    fn inserts_extend_the_keyspace_monotonically() {
        let spec = YcsbSpec::core('D', 100, 5_000, 3).unwrap();
        let mut next_insert = 100u64;
        for op in spec.stream() {
            if op.kind == OpKind::Insert {
                assert_eq!(op.key, next_insert, "inserts append in order");
                next_insert += 1;
            } else {
                assert!(op.key < next_insert, "non-inserts hit live keys only");
            }
        }
    }

    #[test]
    fn scan_lengths_are_bounded() {
        let spec = YcsbSpec::core('E', 1_000, 5_000, 11).unwrap();
        for op in spec.stream() {
            if op.kind == OpKind::Scan {
                assert!(op.scan_len >= 1 && op.scan_len <= spec.max_scan_len);
            }
        }
    }

    #[test]
    fn ordered_keys_sort_like_their_ids() {
        assert!(key_bytes(5) < key_bytes(50));
        assert!(key_bytes(999) < key_bytes(1_000));
    }

    #[test]
    fn scrambled_keys_are_deterministic_and_spread() {
        assert_eq!(scrambled_key_bytes(7), scrambled_key_bytes(7));
        assert_ne!(scrambled_key_bytes(7), scrambled_key_bytes(8));
        // Consecutive ids must not stay adjacent in key order.
        let mut rendered: Vec<Vec<u8>> = (0..100).map(scrambled_key_bytes).collect();
        let ordered = rendered.clone();
        rendered.sort();
        assert_ne!(rendered, ordered, "hashing must break insertion order");
        // Spec-level rendering honors the mode.
        let plain = YcsbSpec::core('A', 10, 10, 1).unwrap();
        let hashed = plain.clone().scrambled();
        assert_eq!(plain.key(3), key_bytes(3));
        assert_eq!(hashed.key(3), scrambled_key_bytes(3));
    }

    #[test]
    fn delete_bearing_variant_rescales_the_mix() {
        let spec = YcsbSpec::core('A', 1_000, 20_000, 13).unwrap().with_deletes(0.1);
        let total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw + spec.delete;
        assert!((total - 1.0).abs() < 1e-9, "mix still sums to one, got {total}");
        let ops: Vec<Op> = spec.stream().collect();
        let deletes = ops.iter().filter(|o| o.kind == OpKind::Delete).count() as f64;
        let frac = deletes / ops.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "delete fraction {frac} should be ~0.1");
        assert_eq!(OpKind::from_code('D'), Some(OpKind::Delete));
        assert_eq!(OpKind::Delete.code(), 'D');
        // Deletes change the digest.
        let base = YcsbSpec::core('A', 1_000, 20_000, 13).unwrap();
        assert_ne!(stream_digest(base.stream()), stream_digest(spec.stream()));
    }
}
