//! Deterministic keyed random numbers and the key-choice distributions.
//!
//! Everything in the workload lab derives from [`KeyedRng`]: a SplitMix64
//! stream whose initial state is the workload seed mixed with an FNV hash
//! of a *stream name*.  Two generators keyed with the same `(seed, name)`
//! pair produce byte-identical streams on every run and every machine —
//! the property the cross-backend determinism tests pin down — while
//! differently named streams (op chooser vs key chooser vs scan-length
//! chooser) are decorrelated without sharing mutable state.

/// 64-bit FNV-1a — the stream-name and key-scramble hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic SplitMix64 stream keyed by `(seed, stream name)`.
#[derive(Debug, Clone)]
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    /// Derive a stream from the workload `seed` and a `stream` label.
    pub fn new(seed: u64, stream: &str) -> Self {
        // Golden-ratio offset keeps seed 0 / empty-name away from the
        // all-zero state.
        KeyedRng { state: seed ^ fnv64(stream.as_bytes()) ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // The modulo bias is < 2^-40 for every bound the lab uses
        // (record counts are millions at most); not worth a reject loop.
        self.next_u64() % bound
    }
}

/// How a workload picks the key of the next operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every live key equally likely.
    Uniform,
    /// YCSB-style Zipfian with the given `theta` (0 < theta < 1;
    /// YCSB's default is 0.99).  Rank 0 is the hottest key.
    Zipfian {
        /// Skew parameter; larger is more skewed.
        theta: f64,
    },
    /// Zipfian over recency: the most recently inserted key is the
    /// hottest (YCSB workload D's distribution).
    Latest,
}

/// Incremental zeta: `sum_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// The Gray et al. bounded-Zipfian sampler YCSB uses, over items
/// `0..items` with rank 0 most popular.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Build a sampler over `items` items (clamped to >= 1) with skew
    /// `theta` (clamped into (0, 1)).
    pub fn new(items: u64, theta: f64) -> Self {
        let items = items.max(1);
        let theta = theta.clamp(1e-6, 0.999_999);
        let zeta_n = zeta(items, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta))
            / (1.0 - zeta2 / zeta_n.max(f64::MIN_POSITIVE));
        Zipfian { items, theta, zeta_n, alpha, eta }
    }

    /// Number of items the sampler draws from.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Probability of the hottest item (rank 0) — `1 / zeta(n, theta)`.
    pub fn top_probability(&self) -> f64 {
        1.0 / self.zeta_n.max(f64::MIN_POSITIVE)
    }

    /// Draw the next rank in `[0, items)`.
    pub fn next(&self, rng: &mut KeyedRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }
}

/// A key chooser over a (possibly growing) ordered key space.
#[derive(Debug, Clone)]
pub struct KeyChooser {
    dist: KeyDistribution,
    zipf: Option<Zipfian>,
    rng: KeyedRng,
}

impl KeyChooser {
    /// Build a chooser for `live` initial keys.
    pub fn new(dist: KeyDistribution, live: u64, seed: u64) -> Self {
        let zipf = match dist {
            KeyDistribution::Zipfian { theta } => Some(Zipfian::new(live, theta)),
            // Latest re-ranks by recency with YCSB's default skew.
            KeyDistribution::Latest => Some(Zipfian::new(live, 0.99)),
            KeyDistribution::Uniform => None,
        };
        KeyChooser { dist, zipf, rng: KeyedRng::new(seed, "key-chooser") }
    }

    /// Choose the id of the next key given `live` keys exist (ids
    /// `0..live`, id `live - 1` newest).
    pub fn next(&mut self, live: u64) -> u64 {
        let live = live.max(1);
        match self.dist {
            KeyDistribution::Uniform => self.rng.below(live),
            KeyDistribution::Zipfian { .. } => {
                // The sampler is sized for the initial key count; ranks for
                // later inserts fold back uniformly (YCSB's behavior when
                // the insert fraction is small).
                let z = self.zipf.as_ref().expect("zipfian chooser has a sampler");
                z.next(&mut self.rng) % live
            }
            KeyDistribution::Latest => {
                let z = self.zipf.as_ref().expect("latest chooser has a sampler");
                let rank = z.next(&mut self.rng) % live;
                live - 1 - rank
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_streams_are_deterministic_and_decorrelated() {
        let a: Vec<u64> = {
            let mut r = KeyedRng::new(42, "ops");
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = KeyedRng::new(42, "ops");
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = KeyedRng::new(42, "keys");
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, stream) must replay identically");
        assert_ne!(a, c, "different stream names must decorrelate");
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let mut r = KeyedRng::new(7, "u");
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zipfian_rank0_is_hottest_and_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = KeyedRng::new(1, "z");
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            let rank = z.next(&mut rng);
            assert!(rank < 100);
            counts[rank as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must be the most frequent");
        assert!(counts[0] > counts[50] * 5, "theta=0.99 must be visibly skewed");
    }

    #[test]
    fn latest_prefers_the_newest_key() {
        let mut chooser = KeyChooser::new(KeyDistribution::Latest, 100, 3);
        let mut newest = 0u64;
        for _ in 0..5_000 {
            if chooser.next(100) == 99 {
                newest += 1;
            }
        }
        assert!(newest > 200, "the newest key must dominate a latest stream ({newest})");
    }
}
