//! Composed multi-tenant scenarios.
//!
//! The headline mix: a **latency-sensitive OLTP tenant** (B+-tree point
//! reads/updates, YCSB-B shaped) on one region beside a
//! **compaction-heavy KV tenant** (a tiny memtable overwritten at rate,
//! so it flushes and merges constantly) on another region of the *same
//! device*.  Regions own disjoint dies but the region allocator stripes
//! both across every channel, so the tenants contend on channel
//! transfers — the interference the paper's configurable regions are
//! meant to make visible and the future cross-region arbiter is meant to
//! bound.  The report therefore carries the OLTP tenant's tail both
//! *shared* and *alone*; their ratio is the noisy-neighbor penalty.

use std::sync::Arc;

use dbms_engine::DatabaseConfig;
use flash_sim::{
    ArbiterConfig, DeviceBuilder, FlashGeometry, NandDevice, ServiceClass, SimTime, TimingModel,
};
use noftl_core::kv::KvConfig;
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_obs::{MetricsRegistry, Unit};

use crate::backend::{BtreeBackend, KvBackend, Result, WorkloadBackend};
use crate::replay::issue_trace_op;
use crate::runner::{load_phase, quantiles_us};
use crate::trace::{from_spec, TraceOp};
use crate::ycsb::{key_bytes, OpKind, YcsbSpec};

/// Sizing of the OLTP-beside-compaction scenario.
#[derive(Debug, Clone, Copy)]
pub struct MultiTenantConfig {
    /// Rows loaded into the OLTP table.
    pub oltp_records: u64,
    /// OLTP operations replayed (YCSB-B mix: 95 % point read, 5 % update).
    pub oltp_ops: u64,
    /// OLTP offered rate, thousands of ops per simulated second.
    pub oltp_rate_kops: f64,
    /// Distinct keys the noisy KV tenant overwrites.
    pub noisy_keys: u64,
    /// Noisy-tenant put operations replayed.
    pub noisy_ops: u64,
    /// Noisy-tenant offered rate, thousands of ops per simulated second.
    pub noisy_rate_kops: f64,
    /// Noisy-tenant value payload bytes (big values churn the memtable).
    pub noisy_value_len: usize,
    /// Seed of every stream in the scenario.
    pub seed: u64,
    /// Run with the device-level cross-region I/O arbiter enabled: the
    /// OLTP region is declared `Latency` class, the noisy KV region
    /// `Background`, so its flush/compaction channel time is budgeted.
    pub arbiter: bool,
}

impl MultiTenantConfig {
    /// CI-sized scenario.
    pub fn quick() -> Self {
        MultiTenantConfig {
            oltp_records: 400,
            oltp_ops: 600,
            oltp_rate_kops: 2.0,
            noisy_keys: 200,
            noisy_ops: 600,
            noisy_rate_kops: 2.0,
            noisy_value_len: 400,
            seed: 0x9c7b,
            arbiter: false,
        }
    }

    /// The same scenario with the cross-region arbiter switched on.
    pub fn with_arbiter(mut self) -> Self {
        self.arbiter = true;
        self
    }

    /// Larger offline scenario.
    pub fn full() -> Self {
        MultiTenantConfig {
            oltp_records: 1_600,
            oltp_ops: 2_400,
            noisy_ops: 2_400,
            ..Self::quick()
        }
    }
}

/// Per-tenant outcome of an interleaved run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant label (`"oltp"` / `"compact"`).
    pub tenant: String,
    /// Operations replayed.
    pub ops: u64,
    /// Achieved rate over the tenant's drain window, kops of simulated time.
    pub achieved_kops: f64,
    /// Median simulated latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile simulated latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile simulated latency, microseconds.
    pub p999_us: f64,
    /// Worst simulated latency, microseconds.
    pub max_us: f64,
}

/// Outcome of the OLTP-beside-compaction scenario.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// The OLTP tenant with the noisy neighbor running.
    pub oltp_shared: TenantReport,
    /// The compaction-heavy KV tenant (shared run).
    pub compact_shared: TenantReport,
    /// The same OLTP schedule on an identical but otherwise idle stack.
    pub oltp_alone: TenantReport,
    /// `oltp_shared.p99 / oltp_alone.p99` — the noisy-neighbor tail
    /// penalty (1.0 = perfect isolation).
    pub p99_penalty: f64,
    /// KV flushes + compactions the noisy tenant triggered (proof the
    /// neighbor really was compacting, not idling).
    pub compact_flushes: u64,
    /// Compactions among those.
    pub compact_compactions: u64,
}

/// One tenant of an interleaved open-loop run.
struct Tenant<'a> {
    trace: &'a [TraceOp],
    backend: &'a dyn WorkloadBackend,
    label: &'a str,
    value_len: usize,
}

/// Replay several tenants' schedules merged by issue instant (ties go to
/// the earlier tenant), recording per-tenant latency histograms
/// (`workload.mt.<label>.op_latency_ns`) on `registry`.
fn run_tenants(
    tenants: &[Tenant<'_>],
    registry: &MetricsRegistry,
    base: SimTime,
) -> Result<Vec<TenantReport>> {
    let hists: Vec<_> = tenants
        .iter()
        .map(|t| {
            registry.histogram(&format!("workload.mt.{}.op_latency_ns", t.label), Unit::SimNanos)
        })
        .collect();
    let mut cursors = vec![0usize; tenants.len()];
    let mut drained = vec![base; tenants.len()];
    loop {
        // The next op across all tenants in schedule order.
        let mut pick: Option<(usize, SimTime)> = None;
        for (i, tenant) in tenants.iter().enumerate() {
            if let Some(op) = tenant.trace.get(cursors[i]) {
                if pick.is_none_or(|(_, at)| op.at < at) {
                    pick = Some((i, op.at));
                }
            }
        }
        let Some((i, at)) = pick else { break };
        cursors[i] += 1;
        let issue = SimTime(base.as_nanos() + at.as_nanos());
        let op = &tenants[i].trace[cursors[i] - 1];
        let (_, done) = issue_trace_op(tenants[i].backend, op, tenants[i].value_len, issue)?;
        drained[i] = drained[i].max(done);
        hists[i].record(done.as_nanos().saturating_sub(issue.as_nanos()));
    }
    Ok(tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let ops = t.trace.len() as u64;
            let secs = SimTime(drained[i].as_nanos().saturating_sub(base.as_nanos()))
                .as_secs_f64()
                .max(f64::MIN_POSITIVE);
            let (p50_us, p99_us, p999_us, max_us) = quantiles_us(&hists[i]);
            TenantReport {
                tenant: t.label.to_string(),
                ops,
                achieved_kops: ops as f64 / secs / 1e3,
                p50_us,
                p99_us,
                p999_us,
                max_us,
            }
        })
        .collect())
}

/// The noisy tenant's schedule: fixed-rate overwriting puts cycling a
/// small key set — every `memtable_bytes` of them becomes a flush, every
/// few flushes a compaction.
fn noisy_trace(config: &MultiTenantConfig) -> Vec<TraceOp> {
    let interval_ns = (1e6 / config.noisy_rate_kops.max(1e-9)).max(1.0) as u64;
    (0..config.noisy_ops)
        .map(|i| TraceOp {
            at: SimTime(i * interval_ns),
            kind: OpKind::Update,
            key: key_bytes(i % config.noisy_keys.max(1)),
            scan_len: 0,
        })
        .collect()
}

/// The OLTP tenant's spec: YCSB-B (95/5 read/update, zipfian) sized by
/// the scenario config.
fn oltp_spec(config: &MultiTenantConfig) -> YcsbSpec {
    YcsbSpec::core('B', config.oltp_records, config.oltp_ops, config.seed)
        .expect("'B' is a core workload")
}

/// Build one stack: OLTP B+-tree on a 4-die region, noisy KV store on
/// the other 4 dies, both striped over both channels of the example
/// device.  Returns the loaded backends and the time loads completed.
fn build_stack(
    config: &MultiTenantConfig,
    registry: &Arc<MetricsRegistry>,
) -> Result<(Arc<NandDevice>, BtreeBackend, KvBackend, SimTime)> {
    let mut builder = DeviceBuilder::new(FlashGeometry::example())
        .timing(TimingModel::mlc_2015())
        .metrics(Arc::clone(registry));
    if config.arbiter {
        builder = builder.arbiter(ArbiterConfig::default());
    }
    let dev = Arc::new(builder.build());
    let noftl = Arc::new(NoFtl::new(dev.clone(), NoFtlConfig::default()));
    let half = dev.geometry().total_dies() / 2;
    let mut placement = PlacementConfig::traditional(half, ["usertable".to_string()]);
    if config.arbiter {
        // The OLTP tenant declares its latency sensitivity to the device.
        for region in &mut placement.regions {
            region.service_class = Some(ServiceClass::Latency);
        }
    }
    let (oltp, t0) = BtreeBackend::create(
        Arc::clone(&noftl),
        &placement,
        DatabaseConfig::default(),
        100,
        SimTime::ZERO,
    )?;
    let mut noisy_spec = RegionSpec::named("rgNoisy").with_die_count(half);
    if config.arbiter {
        // The churning tenant is maintenance-grade: all of its traffic —
        // host puts included — rides the background budget.
        noisy_spec = noisy_spec.with_service_class(ServiceClass::Background);
    }
    let rid = noftl.create_region(noisy_spec)?;
    // A 16 KiB memtable of 400-byte values flushes every ~40 puts; the
    // level-0 fan-in of 4 then compacts every ~160 — constant churn.
    let kv_config = KvConfig { memtable_bytes: 16 * 1024, ..KvConfig::default() };
    let (noisy, t1) = KvBackend::create(Arc::clone(&noftl), rid, "noisy", kv_config, t0)?;
    // Load both tenants' working sets.
    let spec = oltp_spec(config);
    let t2 = load_phase(&spec, &oltp, t1)?;
    let mut t = t2;
    for k in 0..config.noisy_keys {
        t = noisy.insert(&key_bytes(k), &vec![b'n'; config.noisy_value_len], t)?;
    }
    let t = noisy.flush(t)?;
    Ok((dev, oltp, noisy, t))
}

/// Run the OLTP-beside-compaction scenario: interleaved shared run, then
/// the OLTP schedule alone on a fresh identical stack.
pub fn oltp_beside_compaction(config: &MultiTenantConfig) -> Result<MultiTenantReport> {
    let spec = oltp_spec(config);
    let oltp_trace = from_spec(&spec, config.oltp_rate_kops);
    let noisy = noisy_trace(config);

    // Shared run: both tenants on one device.
    let registry = Arc::new(MetricsRegistry::new());
    let (_dev, oltp_backend, noisy_backend, loaded) = build_stack(config, &registry)?;
    let reports = run_tenants(
        &[
            Tenant { trace: &oltp_trace, backend: &oltp_backend, label: "oltp", value_len: 100 },
            Tenant {
                trace: &noisy,
                backend: &noisy_backend,
                label: "compact",
                value_len: config.noisy_value_len,
            },
        ],
        &registry,
        loaded,
    )?;
    let stats = noisy_backend.store().stats();
    let [oltp_shared, compact_shared]: [TenantReport; 2] = reports
        .try_into()
        .map_err(|_| crate::backend::WorkloadError("expected two tenant reports".into()))?;

    // Baseline: the identical OLTP schedule with the neighbor silent.
    let alone_registry = Arc::new(MetricsRegistry::new());
    let (_dev2, oltp_alone_backend, _noisy_idle, loaded2) = build_stack(config, &alone_registry)?;
    let alone = run_tenants(
        &[Tenant {
            trace: &oltp_trace,
            backend: &oltp_alone_backend,
            label: "oltp",
            value_len: 100,
        }],
        &alone_registry,
        loaded2,
    )?;
    let oltp_alone = alone
        .into_iter()
        .next()
        .ok_or_else(|| crate::backend::WorkloadError("expected the alone report".into()))?;

    let p99_penalty = oltp_shared.p99_us / oltp_alone.p99_us.max(f64::MIN_POSITIVE);
    Ok(MultiTenantReport {
        oltp_shared,
        compact_shared,
        oltp_alone,
        p99_penalty,
        compact_flushes: stats.flushes,
        compact_compactions: stats.compactions,
    })
}
