//! # noftl-workload — the workload lab
//!
//! Deterministic workload generation and replay for the NoFTL-regions
//! stack: the measuring stick every placement/arbiter/caching change is
//! evaluated against.
//!
//! * [`rng`] — keyed SplitMix64 streams and the uniform / Zipfian /
//!   latest key distributions.  Same `(seed, stream)` ⇒ byte-identical
//!   draws on every run and machine.
//! * [`ycsb`] — the six YCSB core workloads A–F as pure-function op
//!   streams ([`ycsb::YcsbSpec::core`]); backends never influence the
//!   stream, so NoFTL-KV and the B+-tree replay *identical* keys.
//! * [`backend`] — the five-verb [`backend::WorkloadBackend`] surface
//!   and its two implementations: [`backend::KvBackend`] (NoFTL-KV) and
//!   [`backend::BtreeBackend`] (dbms heap + B+-tree index, one
//!   auto-commit transaction per op).
//! * [`runner`] — closed-loop execution with per-op simulated latency
//!   captured into `noftl-obs` histograms.
//! * [`trace`] — the `noftl-trace v1` text format: an open-loop,
//!   rate-controlled issue schedule.
//! * [`replay`](mod@replay) — coordinated-omission-free replay of a
//!   trace (latency = completion − *scheduled* issue).
//! * [`scenario`] — composed multi-tenant mixes, headlined by
//!   [`scenario::oltp_beside_compaction`]: a latency-sensitive B+-tree
//!   tenant beside a compaction-churning KV tenant sharing the device's
//!   channels, reported shared vs alone.
//!
//! Everything reports *simulated device time*, so throughput and the
//! p50/p99/p999 tails are deterministic — two runs of the same binary
//! produce identical numbers, which is what lets CI gate on them.

#![warn(missing_docs)]

pub mod backend;
pub mod replay;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod trace;
pub mod ycsb;

pub use backend::{BtreeBackend, KvBackend, Result, WorkloadBackend, WorkloadError};
pub use replay::{replay, ReplayReport};
pub use rng::{KeyDistribution, KeyedRng, Zipfian};
pub use runner::{load_phase, run_ycsb, RunReport};
pub use scenario::{oltp_beside_compaction, MultiTenantConfig, MultiTenantReport, TenantReport};
pub use trace::{parse, render, TraceOp};
pub use ycsb::{key_bytes, stream_digest, Op, OpKind, YcsbSpec};
