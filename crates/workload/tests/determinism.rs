//! The workload lab's core promise: a fixed seed produces byte-identical
//! op streams on every run, both backends consume *identical* streams,
//! and the Zipfian sampler's empirical skew tracks its theta.

use std::sync::Arc;

use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::kv::KvConfig;
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_obs::MetricsRegistry;
use noftl_workload::rng::{KeyedRng, Zipfian};
use noftl_workload::trace::from_spec;
use noftl_workload::{load_phase, replay, run_ycsb, BtreeBackend, KvBackend, RunReport, YcsbSpec};
use proptest::prelude::*;

fn kv_stack() -> (KvBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let rid = noftl
        .create_region(RegionSpec::named("rgLab").with_die_count(4))
        .expect("example device has 8 dies");
    let (backend, t) = KvBackend::create(noftl, rid, "lab", KvConfig::default(), SimTime::ZERO)
        .expect("fresh store");
    (backend, t)
}

fn btree_stack(value_len: usize) -> (BtreeBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(4, ["usertable".to_string()]);
    BtreeBackend::create(
        noftl,
        &placement,
        dbms_engine::DatabaseConfig::default(),
        value_len,
        SimTime::ZERO,
    )
    .expect("fresh database")
}

fn run_kv(spec: &YcsbSpec) -> RunReport {
    let (backend, t) = kv_stack();
    let loaded = load_phase(spec, &backend, t).expect("load");
    let registry = MetricsRegistry::new();
    run_ycsb(spec, &backend, &registry, loaded).expect("run")
}

fn run_btree(spec: &YcsbSpec) -> RunReport {
    let (backend, t) = btree_stack(spec.value_len);
    let loaded = load_phase(spec, &backend, t).expect("load");
    let registry = MetricsRegistry::new();
    run_ycsb(spec, &backend, &registry, loaded).expect("run")
}

/// Fixed seed ⇒ the generated op stream is byte-identical across
/// independent generations — the property CI gating leans on.
#[test]
fn fixed_seed_yields_byte_identical_streams() {
    let spec = YcsbSpec::core('A', 200, 400, 0xfeed).expect("A is core");
    let first: Vec<_> = spec.stream().collect();
    let second: Vec<_> = spec.stream().collect();
    assert_eq!(first, second);

    // A different seed really changes the stream.
    let other = YcsbSpec::core('A', 200, 400, 0xbeef).expect("A is core");
    let third: Vec<_> = other.stream().collect();
    assert_ne!(first, third);
}

/// Both backends replay the *same* key stream (equal order-sensitive
/// digests) and, because neither workload deletes, their scans see the
/// same rows.
#[test]
fn kv_and_btree_consume_identical_streams() {
    for which in ['A', 'B', 'C', 'D', 'E', 'F'] {
        let spec = YcsbSpec::core(which, 150, 250, 0x5eed).expect("core workload");
        let kv = run_kv(&spec);
        let bt = run_btree(&spec);
        assert_eq!(kv.ops, spec.op_count, "workload {which}");
        assert_eq!(bt.ops, spec.op_count, "workload {which}");
        assert_eq!(
            kv.stream_digest, bt.stream_digest,
            "workload {which}: backends must replay identical streams"
        );
        assert_eq!(
            kv.rows_scanned, bt.rows_scanned,
            "workload {which}: identical streams over identical data must scan identical rows"
        );
        assert!(kv.throughput_kops > 0.0 && bt.throughput_kops > 0.0, "workload {which}");
        assert!(kv.p99_us >= kv.p50_us && bt.p99_us >= bt.p50_us, "workload {which}");
    }
}

/// The cross-backend stream equality extends to both new modes: the
/// scrambled-key rendering and the delete-bearing mix.  Deletes land on
/// both backends identically, so scans over the surviving rows agree —
/// which also exercises `scan_limit`'s drain-past-tombstones fill on the
/// KV side against the B+-tree's tombstone-free baseline.
#[test]
fn scrambled_and_delete_modes_match_across_backends() {
    let scrambled = YcsbSpec::core('A', 150, 250, 0x5eed).expect("core workload").scrambled();
    let deletes = YcsbSpec::core('E', 150, 250, 0xde1).expect("core workload").with_deletes(0.15);
    let scrambled_deletes = scrambled.clone().with_deletes(0.1);
    for (label, spec) in [
        ("scrambled A", &scrambled),
        ("E+deletes", &deletes),
        ("scrambled A+deletes", &scrambled_deletes),
    ] {
        let kv = run_kv(spec);
        let bt = run_btree(spec);
        assert_eq!(kv.ops, spec.op_count, "{label}");
        assert_eq!(
            kv.stream_digest, bt.stream_digest,
            "{label}: backends must replay identical streams"
        );
        assert_eq!(
            kv.rows_scanned, bt.rows_scanned,
            "{label}: scans over identically-deleted data must see identical rows"
        );
    }
    // Scrambling really changes the consumed key space but not the op
    // stream shape: digests cover (kind, key id, scan_len), so the
    // scrambled and ordered runs share a digest yet touch different keys.
    let plain = YcsbSpec::core('A', 150, 250, 0x5eed).expect("core workload");
    assert_eq!(run_kv(&plain).stream_digest, run_kv(&scrambled).stream_digest);
}

/// Scans actually return rows on both backends (workload E is 95% scans).
#[test]
fn workload_e_scans_return_rows() {
    let spec = YcsbSpec::core('E', 150, 200, 0x0e).expect("E is core");
    let kv = run_kv(&spec);
    assert!(kv.rows_scanned > 0, "E must touch scanned rows, got {}", kv.rows_scanned);
}

/// Open-loop replay of the same trace on two fresh stacks reproduces the
/// exact same simulated numbers — no wall-clock leakage anywhere.
#[test]
fn trace_replay_is_deterministic_across_stacks() {
    let spec = YcsbSpec::core('B', 200, 300, 0x7ace).expect("B is core");
    let trace = from_spec(&spec, 5.0);
    let mut reports = Vec::new();
    for _ in 0..2 {
        let (backend, t) = kv_stack();
        let loaded = load_phase(&spec, &backend, t).expect("load");
        let registry = MetricsRegistry::new();
        reports.push(replay(&trace, &backend, &registry, "det", 100, loaded).expect("replay"));
    }
    let (a, b) = (&reports[0], &reports[1]);
    assert_eq!(a.ops, spec.op_count);
    assert_eq!(a.misses, 0, "workload B only touches loaded keys");
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.drained_at, b.drained_at);
    assert_eq!(a.achieved_kops.to_bits(), b.achieved_kops.to_bits());
    assert_eq!(a.p99_us.to_bits(), b.p99_us.to_bits());
}

/// More theta, more skew: the hottest rank's share grows monotonically.
#[test]
fn zipfian_skew_grows_with_theta() {
    let share = |theta: f64| {
        let mut rng = KeyedRng::new(0x51ef, "skew");
        let zipf = Zipfian::new(100, theta);
        let draws = 4000;
        let hot = (0..draws).filter(|_| zipf.next(&mut rng) == 0).count();
        hot as f64 / draws as f64
    };
    let (low, high) = (share(0.5), share(0.95));
    assert!(
        high > low + 0.02,
        "theta 0.95 should concentrate more than 0.5: {high:.3} vs {low:.3}"
    );
}

proptest! {
    /// The empirical frequency of the hottest rank matches the
    /// analytical `1/zeta` head probability for any theta in the range
    /// YCSB uses, within sampling tolerance.
    #[test]
    fn zipfian_head_matches_theta(theta_pct in 40u32..99, seed in any::<u64>()) {
        let theta = theta_pct as f64 / 100.0;
        let zipf = Zipfian::new(100, theta);
        let expected = zipf.top_probability();
        let mut rng = KeyedRng::new(seed, "zipf-prop");
        let draws = 4000u64;
        let hot = (0..draws).filter(|_| zipf.next(&mut rng) == 0).count();
        let empirical = hot as f64 / draws as f64;
        let tolerance = 0.25 * expected + 0.01;
        prop_assert!(
            (empirical - expected).abs() <= tolerance,
            "theta {}: empirical {:.4} vs analytical {:.4} (tolerance {:.4})",
            theta, empirical, expected, tolerance
        );
    }
}
