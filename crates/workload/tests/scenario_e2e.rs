//! End-to-end multi-tenant scenario: the noisy KV neighbor really
//! compacts, the OLTP tenant really pays a tail penalty, and the whole
//! thing is deterministic run to run.

use noftl_workload::{oltp_beside_compaction, MultiTenantConfig};

#[test]
fn oltp_beside_compaction_runs_and_interferes() {
    let report = oltp_beside_compaction(&MultiTenantConfig::quick()).expect("scenario");
    assert_eq!(report.oltp_shared.ops, 600);
    assert_eq!(report.compact_shared.ops, 600);
    assert_eq!(report.oltp_alone.ops, 600);
    assert!(
        report.compact_flushes > 0,
        "the noisy tenant must actually flush (got {})",
        report.compact_flushes
    );
    assert!(report.oltp_shared.p99_us > 0.0 && report.oltp_alone.p99_us > 0.0);
    assert!(
        report.p99_penalty >= 1.0,
        "sharing channels with a compacting neighbor cannot improve the tail: penalty {:.3}",
        report.p99_penalty
    );
}

#[test]
fn scenario_is_deterministic() {
    let a = oltp_beside_compaction(&MultiTenantConfig::quick()).expect("scenario");
    let b = oltp_beside_compaction(&MultiTenantConfig::quick()).expect("scenario");
    assert_eq!(a.p99_penalty.to_bits(), b.p99_penalty.to_bits());
    assert_eq!(a.oltp_shared.p999_us.to_bits(), b.oltp_shared.p999_us.to_bits());
    assert_eq!(a.compact_shared.achieved_kops.to_bits(), b.compact_shared.achieved_kops.to_bits());
    assert_eq!(a.compact_flushes, b.compact_flushes);
}

#[test]
fn arbiter_caps_the_noisy_neighbor_penalty() {
    let off = oltp_beside_compaction(&MultiTenantConfig::quick()).expect("scenario");
    let on = oltp_beside_compaction(&MultiTenantConfig::quick().with_arbiter()).expect("scenario");
    eprintln!(
        "off: penalty={:.3} oltp_kops={:.3} compact_kops={:.3} alone_p99={:.1}",
        off.p99_penalty,
        off.oltp_shared.achieved_kops,
        off.compact_shared.achieved_kops,
        off.oltp_alone.p99_us
    );
    eprintln!(
        "on:  penalty={:.3} oltp_kops={:.3} compact_kops={:.3} alone_p99={:.1}",
        on.p99_penalty,
        on.oltp_shared.achieved_kops,
        on.compact_shared.achieved_kops,
        on.oltp_alone.p99_us
    );
    assert!(on.p99_penalty <= 2.0, "arbiter-on penalty {:.3} > 2.0", on.p99_penalty);
    assert!(
        on.compact_shared.achieved_kops >= off.compact_shared.achieved_kops * 0.75,
        "background tenant degraded more than 25%: {:.3} vs {:.3}",
        on.compact_shared.achieved_kops,
        off.compact_shared.achieved_kops
    );
}
