//! Command-queue acceptance tests.
//!
//! Three properties of the submission-queue redesign are checked here:
//!
//! 1. **Equivalence** — N random interleaved submissions through
//!    [`CommandQueue`] produce the same final device state (block states,
//!    payloads, OOB metadata, per-page epochs) and the same per-op
//!    outcomes as the same operations issued sequentially through the
//!    legacy blocking API.  The blocking calls are thin submit+wait
//!    wrappers, so any divergence would expose a hole in the per-die
//!    lock-shard refactor.
//! 2. **Concurrency** — threads submitting to disjoint dies through one
//!    shared queue produce exactly the per-die timings of a
//!    single-threaded run: there is no device-global lock left whose
//!    acquisition order could perturb the timing model.
//! 3. **Crash interaction** — with a power cut armed, a queued batch
//!    tears exactly the commands whose scheduled completion exceeds the
//!    cut instant, and a NoFTL mount after the cut keeps every committed
//!    page while discarding the torn ones.

use std::sync::Arc;

use proptest::prelude::*;

use noftl_regions::flash::queue::{CommandQueue, FlashCommand};
use noftl_regions::flash::{
    BlockAddr, DeviceBuilder, DieId, FlashGeometry, NandDevice, PageAddr, PageMetadata, SimTime,
    TimingModel,
};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, RegionSpec};

fn device() -> NandDevice {
    DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build()
}

/// SplitMix64; the proptest stub provides the seed, this drives the
/// command generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate `nops` random commands that are *valid by construction*
/// (sequential programming, erase-before-reuse, same-die copybacks), by
/// tracking a shadow model of every block's write pointer and the set of
/// programmed pages per die.
fn generate_commands(seed: u64, nops: usize, geo: &FlashGeometry) -> Vec<FlashCommand> {
    let mut rng = seed;
    let dies = geo.total_dies();
    let blocks = geo.blocks_per_plane;
    let ppb = geo.pages_per_block;
    let psz = geo.page_size as usize;
    // Shadow state per (die, block): next programmable page.
    let mut write_ptr = vec![vec![0u32; blocks as usize]; dies as usize];
    // Pages that have been programmed since their block's last erase.
    let mut written: Vec<Vec<PageAddr>> = vec![Vec::new(); dies as usize];
    let mut out = Vec::with_capacity(nops);
    while out.len() < nops {
        let die = (splitmix(&mut rng) % dies as u64) as u32;
        let d = die as usize;
        match splitmix(&mut rng) % 10 {
            // Programs dominate so the device actually fills up.
            0..=4 => {
                let block = (splitmix(&mut rng) % blocks as u64) as u32;
                let next = write_ptr[d][block as usize];
                if next >= ppb {
                    continue;
                }
                let addr = PageAddr::new(DieId(die), 0, block, next);
                let byte = (splitmix(&mut rng) & 0xFF) as u8;
                let data = vec![byte; psz];
                let lp = splitmix(&mut rng) % 1024;
                let meta = PageMetadata::new(1 + die, lp).with_payload_checksum(&data);
                write_ptr[d][block as usize] = next + 1;
                written[d].push(addr);
                out.push(FlashCommand::Program { addr, data, meta });
            }
            5 | 6 => {
                if written[d].is_empty() {
                    continue;
                }
                let idx = (splitmix(&mut rng) % written[d].len() as u64) as usize;
                out.push(FlashCommand::Read { addr: written[d][idx] });
            }
            7 => {
                if written[d].is_empty() {
                    continue;
                }
                let idx = (splitmix(&mut rng) % written[d].len() as u64) as usize;
                out.push(FlashCommand::MetadataRead { addr: written[d][idx] });
            }
            8 => {
                // Copyback: a programmed source, destination at another
                // block's write pointer on the same die.
                if written[d].is_empty() {
                    continue;
                }
                let sidx = (splitmix(&mut rng) % written[d].len() as u64) as usize;
                let src = written[d][sidx];
                let dblock = (splitmix(&mut rng) % blocks as u64) as u32;
                let next = write_ptr[d][dblock as usize];
                if dblock == src.block || next >= ppb {
                    continue;
                }
                let dst = PageAddr::new(DieId(die), 0, dblock, next);
                write_ptr[d][dblock as usize] = next + 1;
                written[d].push(dst);
                out.push(FlashCommand::Copyback { src, dst });
            }
            _ => {
                // Erase a block that has been written to.
                let block = (splitmix(&mut rng) % blocks as u64) as u32;
                if write_ptr[d][block as usize] == 0 {
                    continue;
                }
                write_ptr[d][block as usize] = 0;
                written[d].retain(|p| p.block != block);
                out.push(FlashCommand::Erase { block: BlockAddr::new(DieId(die), 0, block) });
            }
        }
    }
    out
}

/// What one blocking call yields, reduced to what a completion record
/// exposes: payload, OOB metadata, completion time.
type BlockingOutcome =
    Result<(Vec<u8>, Option<PageMetadata>, SimTime), noftl_regions::flash::FlashError>;

/// Replay one command through the legacy blocking API.
fn run_blocking(dev: &NandDevice, cmd: &FlashCommand, at: SimTime) -> BlockingOutcome {
    match cmd {
        FlashCommand::Read { addr } => {
            dev.read_page(*addr, at).map(|(d, m, o)| (d, m, o.completed_at))
        }
        FlashCommand::MetadataRead { addr } => {
            dev.read_metadata(*addr, at).map(|(m, o)| (Vec::new(), m, o.completed_at))
        }
        FlashCommand::Program { addr, data, meta } => {
            dev.program_page(*addr, data, *meta, at).map(|o| (Vec::new(), None, o.completed_at))
        }
        FlashCommand::Erase { block } => {
            dev.erase_block(*block, at).map(|o| (Vec::new(), None, o.completed_at))
        }
        FlashCommand::Copyback { src, dst } => {
            dev.copyback(*src, *dst, at).map(|o| (Vec::new(), None, o.completed_at))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N random interleaved submissions through `CommandQueue` leave the
    /// device in the same state — block-for-block, epoch-for-epoch — as
    /// the same operations through the legacy blocking API, with
    /// identical per-operation completion times and verdicts.
    #[test]
    fn queued_and_blocking_submission_are_equivalent(
        seed in 0u64..(1u64 << 48),
        nops in 60usize..160,
    ) {
        let geo = FlashGeometry::small_test();
        let commands = generate_commands(seed, nops, &geo);

        // Reference: the blocking API, one call after another (all issued
        // at t=0; the per-die clocks provide the serialisation).
        let blocking_dev = device();
        let mut blocking: Vec<BlockingOutcome> = Vec::with_capacity(commands.len());
        for cmd in &commands {
            blocking.push(run_blocking(&blocking_dev, cmd, SimTime::ZERO));
        }

        // Queued: the same submission order through the command queue.
        let queued_dev = Arc::new(device());
        let queue = CommandQueue::new(queued_dev.clone());
        let handles = queue.submit_batch(commands.iter().cloned(), SimTime::ZERO);
        for (i, h) in handles.into_iter().enumerate() {
            let completion = queue.wait(h).unwrap();
            match (&blocking[i], completion.result) {
                (Ok((data, meta, done)), Ok(out)) => {
                    prop_assert_eq!(data, &out.data, "payload of op {}", i);
                    prop_assert_eq!(meta, &out.meta, "metadata of op {}", i);
                    prop_assert_eq!(*done, out.outcome.completed_at, "completion of op {}", i);
                }
                (Err(expected), Err(got)) => prop_assert_eq!(expected, &got, "error of op {}", i),
                (expected, got) => {
                    prop_assert!(false, "op {i}: blocking {expected:?} vs queued {got:?}");
                }
            }
        }

        // Identical final device images: page states, payloads, OOB
        // metadata (thus per-page epochs), wear and statistics.
        let a = blocking_dev.snapshot();
        let b = queued_dev.snapshot();
        prop_assert_eq!(a.blocks, b.blocks);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.epoch, b.epoch);
        prop_assert_eq!(a.wear, b.wear);
    }
}

/// Threads submitting to disjoint dies through one shared queue get the
/// same per-die completion times as a single-threaded run — they no
/// longer serialize on a device-global mutex, so nothing about their
/// interleaving can influence the timing model.
#[test]
fn concurrent_disjoint_die_reads_do_not_serialize() {
    let geo = FlashGeometry::small_test();
    let prep = |dev: &NandDevice| {
        for die in 0..geo.total_dies() {
            for p in 0..geo.pages_per_block {
                let addr = PageAddr::new(DieId(die), 0, 0, p);
                let data = vec![(die ^ p) as u8; geo.page_size as usize];
                dev.program_page(addr, &data, PageMetadata::new(1, p as u64), SimTime::ZERO)
                    .unwrap();
            }
        }
    };
    let read_die = move |queue: &CommandQueue, die: u32, at: SimTime| -> Vec<SimTime> {
        let handles: Vec<_> = (0..geo.pages_per_block)
            .map(|p| {
                queue.submit(FlashCommand::Read { addr: PageAddr::new(DieId(die), 0, 0, p) }, at)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| queue.wait(h).unwrap().result.unwrap().outcome.completed_at)
            .collect()
    };

    // Single-threaded reference.
    let ref_dev = Arc::new(device());
    prep(&ref_dev);
    let t0 = ref_dev.quiesce_time();
    let ref_queue = CommandQueue::new(ref_dev.clone());
    let expect0 = read_die(&ref_queue, 0, t0);
    let expect2 = read_die(&ref_queue, 2, t0);

    // Two threads on dies of different channels, one shared queue.
    let dev = Arc::new(device());
    prep(&dev);
    let queue = Arc::new(CommandQueue::new(dev.clone()));
    let (qa, qb) = (Arc::clone(&queue), Arc::clone(&queue));
    let ta = std::thread::spawn(move || read_die(&qa, 0, t0));
    let tb = std::thread::spawn(move || read_die(&qb, 2, t0));
    let got0 = ta.join().unwrap();
    let got2 = tb.join().unwrap();
    assert_eq!(got0, expect0, "die 0 timings must match the single-threaded run");
    assert_eq!(got2, expect2, "die 2 timings must match the single-threaded run");
}

/// With a power cut armed, a queued fan-out batch tears exactly the
/// commands whose scheduled completion exceeds the cut instant.
#[test]
fn power_cut_tears_exactly_the_late_queued_programs() {
    let geo = FlashGeometry::small_test();
    let batch = |start_block: u32| -> Vec<FlashCommand> {
        // Two programs per die (depth 2 everywhere), all issued at t=0.
        (0..2 * geo.total_dies())
            .map(|i| {
                let die = i % geo.total_dies();
                let page = i / geo.total_dies();
                let addr = PageAddr::new(DieId(die), 0, start_block, page);
                let data = vec![i as u8; geo.page_size as usize];
                FlashCommand::Program {
                    addr,
                    data: data.clone(),
                    meta: PageMetadata::new(1, i as u64).with_payload_checksum(&data),
                }
            })
            .collect()
    };

    // Probe run (no cut) to learn every command's completion time.
    let probe_dev = Arc::new(device());
    let probe_q = CommandQueue::new(probe_dev.clone());
    let probe_handles = probe_q.submit_batch(batch(0), SimTime::ZERO);
    let completions: Vec<SimTime> = probe_handles
        .into_iter()
        .map(|h| probe_q.wait(h).unwrap().result.unwrap().outcome.completed_at)
        .collect();
    let earliest = *completions.iter().min().unwrap();
    let latest = *completions.iter().max().unwrap();
    assert!(earliest < latest, "queue depth 2 must stagger completions");
    // Cut strictly between the first and second wave.
    let cut = SimTime((earliest.as_nanos() + latest.as_nanos()) / 2);

    let dev = Arc::new(device());
    dev.arm_power_cut(cut);
    let queue = CommandQueue::new(dev.clone());
    let handles = queue.submit_batch(batch(0), SimTime::ZERO);
    let mut survived = 0;
    for (i, h) in handles.into_iter().enumerate() {
        let completion = queue.wait(h).unwrap();
        if completions[i] <= cut {
            let out = completion.result.unwrap_or_else(|e| {
                panic!("op {i} completing at {:?} <= cut {cut:?} must survive: {e}", completions[i])
            });
            assert_eq!(out.outcome.completed_at, completions[i]);
            survived += 1;
        } else {
            let err = completion.result.expect_err("op completing after the cut must tear");
            assert!(err.is_power_loss(), "op {i}: {err}");
        }
    }
    assert_eq!(survived, geo.total_dies() as usize, "exactly the first wave survives");
}

/// A power cut mid-`write_batch` at the storage-manager level: the
/// committed prefix survives a reboot + mount, torn pages are discarded,
/// and the recovered manager serves the pre-crash versions.
#[test]
fn queued_write_batch_under_power_cut_mounts_cleanly() {
    let dev = Arc::new(device());
    let noftl = NoFtl::new(dev.clone(), NoFtlConfig::default());
    let rg = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
    let obj = noftl.create_object("t", rg).unwrap();
    let psz = dev.geometry().page_size as usize;
    let page = |b: u8| vec![b; psz];

    // Base versions of 8 pages, checkpointed so the device mounts.
    let mut t = SimTime::ZERO;
    for p in 0..8u64 {
        t = noftl.write(obj, p, &page(0x10 + p as u8), t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();

    // Overwrite all 8 via a queued batch with a cut landing mid-batch:
    // two waves of 4 (one per die); tear the second wave.
    let quiesce = dev.quiesce_time();
    let probe_dev = Arc::new(device());
    let probe = NoFtl::new(probe_dev.clone(), NoFtlConfig::default());
    let prg = probe.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
    let pobj = probe.create_object("t", prg).unwrap();
    let w0 = probe.submit_write(pobj, 0, &page(1), SimTime::ZERO).unwrap();
    let (_, first_done) = probe.wait_io(w0).unwrap();
    let span = first_done.as_nanos();
    let cut = SimTime(quiesce.as_nanos() + span * 3 / 2);
    dev.arm_power_cut(cut);

    let batch: Vec<(u32, u64, Vec<u8>)> =
        (0..8u64).map(|p| (obj, p, page(0x40 + p as u8))).collect();
    let err = noftl.write_batch(&batch, quiesce).unwrap_err();
    assert!(matches!(err, noftl_regions::noftl::NoFtlError::Flash(e) if e.is_power_loss()));

    // Reboot from the snapshot and mount.
    let snap = dev.snapshot();
    let dev2 = Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap());
    let (mounted, report) = NoFtl::mount(dev2, NoFtlConfig::default(), t).unwrap();
    assert!(report.torn_pages_discarded > 0, "the cut must have torn part of the batch");
    // Every page reads as either its base version or its batch version —
    // never a torn mix (the checksum would have discarded it).
    let done = report.completed_at;
    let mut new_versions = 0;
    for p in 0..8u64 {
        let (data, _) = mounted.read(obj, p, done).unwrap();
        let old = page(0x10 + p as u8);
        let new = page(0x40 + p as u8);
        assert!(data == old || data == new, "page {p} must be one complete version");
        new_versions += usize::from(data == new);
    }
    assert!(new_versions >= 1, "the first wave of the batch completed before the cut");
    assert!(new_versions < 8, "the cut must have prevented part of the batch");
}
