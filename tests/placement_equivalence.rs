//! Placement-policy equivalence harness, mirroring the PR 3
//! queue-equivalence suite.
//!
//! The write path is policy-driven (`placement::PlacementPolicy`); the
//! default `RoundRobin` policy must reproduce the *seed* allocator
//! byte-for-byte.  The golden digests below were captured by running
//! `workload_digest` against the pre-refactor tree (commit `e591582`,
//! where `allocate_in_region` still striped round-robin inline): for a
//! deterministic mixed workload — single writes, queued batches,
//! overwrites deep enough to run GC, page frees — the full device image
//! (`DeviceSnapshot::encode`, which covers page states, payloads, OOB
//! records, wear and statistics) and the device write-epoch counter must
//! hash to exactly the same values after the refactor.
//!
//! Regenerate with `NOFTL_PRINT_GOLDEN=1 cargo test --test
//! placement_equivalence -- --nocapture` *only* when a change is meant to
//! alter physical placement.

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, RegionSpec};

mod common;
use common::splitmix;

/// (seed, golden CRC32 of the device image, golden device epoch).
/// Captured against the pre-refactor allocator; see module docs.
const GOLDEN: &[(u64, u32, u64)] = &[
    (0x9E37_0001, 0x3BBE_9136, 984),
    (0x9E37_0002, 0xB1F0_FE68, 984),
    (0x9E37_0003, 0x70DC_2852, 984),
];

fn page(b: u8) -> Vec<u8> {
    vec![b; 4096]
}

struct WorkloadRun {
    digest: u32,
    epoch: u64,
    device: Arc<NandDevice>,
    noftl: NoFtl,
    /// Live `(object, logical page) → value byte` expectation at the end.
    expected: std::collections::HashMap<(u32, u64), u8>,
    done: SimTime,
}

/// Run the deterministic mixed workload for `seed` and digest the device.
fn run_workload(seed: u64, config: NoFtlConfig) -> WorkloadRun {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = NoFtl::new(device.clone(), config);
    let r = noftl.create_region(RegionSpec::named("rgEq").with_die_count(3)).unwrap();
    let a = noftl.create_object("a", r).unwrap();
    let b = noftl.create_object("b", r).unwrap();
    let geo = *device.geometry();
    // 60 % of the region's raw capacity, overwritten over several rounds,
    // so GC runs repeatedly while the workload is in flight.
    let working = 3 * geo.pages_per_die() * 6 / 10;
    let mut expected = std::collections::HashMap::new();
    let mut rng = seed;
    let mut t = SimTime::ZERO;
    for _round in 0..4u64 {
        // Single out-of-place writes to random logical pages of `a`.
        for _ in 0..working {
            let p = splitmix(&mut rng) % working;
            let v = (splitmix(&mut rng) % 251) as u8;
            t = noftl.write(a, p, &page(v), t).unwrap();
            expected.insert((a, p), v);
        }
        // A queued batch on `b` (the write_batch allocation path).
        let batch: Vec<(u32, u64, Vec<u8>)> = (0..16)
            .map(|_| {
                let p = splitmix(&mut rng) % 32;
                let v = (splitmix(&mut rng) % 251) as u8;
                expected.insert((b, p), v);
                (b, p, page(v))
            })
            .collect();
        t = noftl.write_batch(&batch, t).unwrap();
        // Free a few pages so invalidation accounting is exercised too.
        for _ in 0..4 {
            let p = splitmix(&mut rng) % working;
            noftl.free_page(a, p).unwrap();
            expected.remove(&(a, p));
        }
    }
    let stats = noftl.region_stats(r).unwrap();
    assert!(stats.gc_runs > 0, "seed {seed:#x}: the workload must trigger GC");
    // The image format ends with a CRC-32 over the entire payload; that
    // trailer *is* the digest of the full device state.  (Hashing the
    // whole image would always yield the CRC residue constant.)
    let image = device.snapshot().encode();
    let digest = u32::from_le_bytes(image[image.len() - 4..].try_into().expect("4 bytes"));
    let epoch = device.current_epoch();
    WorkloadRun { digest, epoch, device, noftl, expected, done: t }
}

#[test]
fn round_robin_reproduces_the_seed_allocator_byte_for_byte() {
    let print = std::env::var("NOFTL_PRINT_GOLDEN").is_ok();
    for (seed, golden_crc, golden_epoch) in GOLDEN {
        let run = run_workload(*seed, NoFtlConfig::default());
        if print {
            println!("    ({seed:#x}, {:#010x}, {}),", run.digest, run.epoch);
            continue;
        }
        assert_eq!(
            (run.digest, run.epoch),
            (*golden_crc, *golden_epoch),
            "seed {seed:#x}: RoundRobin placement diverged from the pre-refactor allocator"
        );
    }
}

#[test]
fn identical_runs_produce_identical_images() {
    // Determinism backstop for the digests above: two runs of the same
    // seed agree bit-for-bit, so a golden mismatch is a real placement
    // change, never noise.
    let r1 = run_workload(0xD1CE, NoFtlConfig::default());
    let r2 = run_workload(0xD1CE, NoFtlConfig::default());
    assert_eq!((r1.digest, r1.epoch), (r2.digest, r2.epoch));
}

#[test]
fn queue_aware_runs_the_same_workload_without_losing_a_page() {
    use noftl_regions::noftl::PlacementPolicyKind;
    // The other half of the equivalence story: QueueAware may place pages
    // differently (that is the point), but every live logical page of the
    // very same workload must read back its latest value, the epoch
    // counter must match (same number of programs), and the region must
    // still have garbage-collected.
    let config =
        NoFtlConfig { placement: PlacementPolicyKind::QueueAware, ..NoFtlConfig::default() };
    for (seed, _, golden_epoch) in GOLDEN {
        let run = run_workload(*seed, config);
        assert_eq!(
            run.epoch, *golden_epoch,
            "seed {seed:#x}: policy choice must not change how many programs happen"
        );
        for ((obj, p), v) in &run.expected {
            let (data, _) = run.noftl.read(*obj, *p, run.done).unwrap();
            assert_eq!(data, page(*v), "seed {seed:#x}: object {obj} page {p}");
        }
        drop(run.device);
    }
}
