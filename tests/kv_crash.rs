//! NoFTL-KV acceptance tests: queued multi-die batches and crash
//! consistency.
//!
//! The property test sweeps ≥ 25 random power-cut instants (every fifth
//! cut aimed *inside a compaction merge*) across a put/delete workload
//! whose memtable flushes and size-tiered compactions fire continuously.
//! After every cut the device is rebooted from its snapshot, the storage
//! manager remounted (`NoFtl::mount`) and the store reopened
//! (`KvStore::open`); the harness then verifies that
//!
//! * every key covered by an acknowledged flush is present with its
//!   exact value (no lost committed keys);
//! * torn tail runs and merge results whose directory checkpoint never
//!   landed are discarded — never half-adopted;
//! * a cut inside a compaction merge loses nothing: the source runs
//!   survive until the merged run is durable *and* checkpointed;
//! * a full scan of the reopened store agrees with the point-lookup
//!   view.

mod common;

use std::sync::Arc;

use common::{property_rounds, splitmix};
use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::kv::{
    run_kv_crash_cycle, run_kv_crash_cycle_in_compaction, KvConfig, KvCrashConfig, KvStore,
};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementPolicyKind, RegionSpec};

#[test]
fn random_power_cuts_recover_every_committed_key() {
    let rounds = property_rounds(30).max(25); // the acceptance floor
    let mut rng = 0x4B56_C0DEu64;
    let mut flushes_total = 0u64;
    let mut committed_total = 0u64;
    let mut torn_total = 0u64;
    let mut compaction_cuts = 0u64;
    let mut in_flight_survivals = 0u64;
    for round in 0..rounds {
        let cfg = KvCrashConfig {
            // Vary the workload itself every few rounds so the cuts do
            // not all land in identical histories.
            seed: 0x5EED_4B56 ^ (round / 5),
            // Alternate the placement policy so both RoundRobin and
            // QueueAware are covered by the tier-1 sweep (odd rounds force
            // QueueAware; even rounds keep the default, which honours the
            // NOFTL_PLACEMENT env toggle).
            placement: if round % 2 == 1 {
                PlacementPolicyKind::QueueAware
            } else {
                KvCrashConfig::default().placement
            },
            ..KvCrashConfig::default()
        };
        let fraction = (splitmix(&mut rng) % 1_000) as f64 / 1_000.0;
        // Every fifth round aims the cut inside a compaction merge so
        // the crash-during-compaction path is guaranteed coverage.
        let outcome = if round % 5 == 4 {
            run_kv_crash_cycle_in_compaction(&cfg, fraction)
                .unwrap_or_else(|e| panic!("round {round} (compaction-aimed) failed: {e}"))
                .expect("the default workload compacts")
        } else {
            run_kv_crash_cycle(&cfg, fraction)
                .unwrap_or_else(|e| panic!("round {round} (fraction {fraction:.3}) failed: {e}"))
        };
        flushes_total += outcome.flushes_acknowledged;
        committed_total += outcome.committed_keys;
        torn_total += outcome.open.torn_runs_discarded as u64;
        compaction_cuts += u64::from(outcome.cut_during_compaction);
        in_flight_survivals += u64::from(outcome.in_flight_flush_survived);
        assert!(outcome.mount.checkpoint_seq > 0, "round {round}: setup checkpoint must exist");
        assert!(outcome.verified_keys <= cfg.keys, "round {round}");
    }
    assert!(
        flushes_total > rounds,
        "cuts landed too early: only {flushes_total} flushes over {rounds} rounds"
    );
    assert!(committed_total > 0);
    assert!(
        compaction_cuts > 0,
        "no cut ever landed inside a compaction — the aimed rounds missed"
    );
    println!(
        "{rounds} cuts: {flushes_total} flushes acknowledged, {committed_total} committed keys \
         verified, {torn_total} torn runs discarded, {compaction_cuts} cuts during compaction, \
         {in_flight_survivals} in-flight flushes survived"
    );
}

#[test]
fn cut_during_compaction_merge_loses_nothing() {
    // Deterministic: aim straight into the first compaction window of
    // the default workload.  The harness fails the test internally if
    // any committed key is lost or a torn run half-survives.
    let outcome = run_kv_crash_cycle_in_compaction(&KvCrashConfig::default(), 0.0)
        .expect("cycle runs")
        .expect("the default workload compacts");
    assert!(outcome.cut_during_compaction, "the cut must land inside the merge");
    assert!(outcome.flushes_acknowledged > 0);
    assert!(outcome.committed_keys > 0);
}

#[test]
fn flush_and_compaction_issue_queued_multi_die_batches() {
    // The acceptance assertion at the facade level: a memtable flush and
    // a compaction merge both go through the command-queue submission
    // API, fanning their pages over the region's dies.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let rid = noftl.create_region(RegionSpec::named("rgKv").with_die_count(3)).unwrap();
    let config = KvConfig { compaction_threshold: 2, ..KvConfig::default() };
    let (store, mut t) =
        KvStore::create(Arc::clone(&noftl), rid, "queued", config, SimTime::ZERO).unwrap();

    let fill = |store: &KvStore, mut t: SimTime, round: u64| {
        for i in 0..300u64 {
            let key = format!("user{i:06}").into_bytes();
            let val = format!("value-{i:06}-r{round}-padpadpadpad").into_bytes();
            t = store.put(&key, &val, t).unwrap();
        }
        t
    };

    t = fill(&store, t, 1);
    let before = noftl.io_queue_stats();
    t = store.flush(t).unwrap();
    let after_flush = noftl.io_queue_stats();
    let flushed = store.stats().flushed_pages;
    assert!(flushed >= 4, "300 entries must span several pages");
    assert_eq!(
        after_flush.submitted - before.submitted,
        flushed,
        "every flush page must go through the submission queue"
    );
    let dies_hit = after_flush
        .per_die_submitted
        .iter()
        .zip(before.per_die_submitted.iter())
        .filter(|(a, b)| *a > *b)
        .count();
    assert!(dies_hit >= 2, "flush must fan across dies (hit {dies_hit})");

    // A second flush triggers the threshold-2 compaction; its merged run
    // is also written as a queued batch.
    t = fill(&store, t, 2);
    t = store.flush(t).unwrap();
    let after_compaction = noftl.io_queue_stats();
    let stats = store.stats();
    assert!(stats.compactions > 0, "threshold 2 must compact on the second flush");
    assert!(stats.compacted_pages >= 4);
    assert!(
        after_compaction.submitted - after_flush.submitted
            >= stats.flushed_pages - flushed + stats.compacted_pages,
        "the merge pages must also be queued submissions"
    );

    // Round 2 values win after the merge.
    let (got, _) = store.get(b"user000123", t).unwrap();
    assert_eq!(got.as_deref(), Some(b"value-000123-r2-padpadpadpad".as_slice()));
}
