//! Helpers shared by the crash/equivalence property-test suites.
//!
//! Not every test binary uses every helper; dead-code warnings here only
//! reflect per-binary slices of the shared module.
#![allow(dead_code)]

/// Deterministic SplitMix64 for picking cut fractions.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rounds of a hand-rolled property loop: the `PROPTEST_CASES`
/// convention (pinned in CI to bound runtime; local runs keep the
/// default).
pub fn property_rounds(default: u64) -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
