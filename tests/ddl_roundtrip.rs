//! Integration test: the paper's DDL example drives the real storage
//! manager, and the resulting objects are usable through the engine.

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime};
use noftl_regions::noftl::{Ddl, NoFtl, NoFtlConfig};

#[test]
fn paper_ddl_example_end_to_end() {
    let device = Arc::new(DeviceBuilder::new(FlashGeometry::edbt_paper()).build());
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::paper_defaults());
    let ddl = Ddl::new(&noftl);
    // Verbatim from Section 2 of the paper (EXTENT SIZE spelled with '_').
    ddl.run_script(
        "CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
         CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT_SIZE=128K);
         CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;",
    )
    .expect("the paper's example DDL must execute");

    let ts = ddl.tablespace("tsHotTbl").expect("tablespace registered");
    let info = noftl.region_info(ts.region).expect("region exists");
    assert_eq!(info.name, "rgHotTbl");
    // MAX_SIZE=1280M on 256 MiB dies resolves to 5 dies; MAX_CHIPS / MAX_CHANNELS
    // are looser bounds on this geometry.
    assert_eq!(info.dies.len(), 5);

    // The table is a real object: write it, crash-free read-back, stats.
    let table = ddl.table("T").expect("table registered");
    let mut now = SimTime::ZERO;
    for page in 0..128u64 {
        now = noftl.write(table, page, &vec![(page % 251) as u8; 4096], now).unwrap();
    }
    let (data, _) = noftl.read(table, 99, now).unwrap();
    assert_eq!(data, vec![99u8; 4096]);
    let stats = noftl.object_stats(table).unwrap();
    assert_eq!(stats.writes, 128);
    assert_eq!(stats.pages, 128);
    assert_eq!(stats.region, ts.region);

    // Dropping the table frees its pages; dropping the region returns the dies.
    ddl.run_script("DROP TABLE T; DROP REGION rgHotTbl;").unwrap();
    assert!(noftl.region_id("rgHotTbl").is_none());
    assert_eq!(noftl.free_die_count(), device.geometry().total_dies());
}
