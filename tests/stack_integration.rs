//! Cross-crate integration tests: the full stack from the flash simulator
//! up to the storage engine, under both storage backends.

use std::sync::Arc;

use noftl_regions::dbms::value::{composite_key, Value};
use noftl_regions::dbms::{
    BlockBackend, ColumnType, Database, DatabaseConfig, NoFtlBackend, Schema,
};
use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::ftl::{FtlConfig, FtlSsd};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig};

fn schema() -> Schema {
    Schema::new(vec![
        ("id", ColumnType::Int),
        ("qty", ColumnType::Int),
        ("note", ColumnType::Str(32)),
    ])
}

fn row(id: i64, qty: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Int(qty), Value::Str(format!("row-{id}"))]
}

fn exercise(db: &Database) {
    let t0 = SimTime::ZERO;
    db.create_table("t", schema(), t0).unwrap();
    db.create_index("t", "t_pk", t0).unwrap();
    let mut txn = db.begin(t0);
    let mut rids = Vec::new();
    for id in 0..500i64 {
        let rid =
            db.insert(&mut txn, "t", &row(id, id * 2), &[("t_pk", composite_key(&[id]))]).unwrap();
        rids.push(rid);
    }
    db.commit(&mut txn).unwrap();
    // Point lookups through the index.
    let mut txn = db.begin(txn.now);
    for id in (0..500i64).step_by(37) {
        let (_, rec) = db.index_get(&mut txn, "t", "t_pk", &composite_key(&[id])).unwrap().unwrap();
        assert_eq!(rec[0], Value::Int(id));
        assert_eq!(rec[1], Value::Int(id * 2));
    }
    // Updates stay in place.
    db.update(&mut txn, "t", rids[10], &row(10, 999)).unwrap();
    let rec = db.get(&mut txn, "t", rids[10]).unwrap();
    assert_eq!(rec[1], Value::Int(999));
    // Range scan.
    let hits = db
        .index_range(&mut txn, "t", "t_pk", &composite_key(&[100]), &composite_key(&[110]))
        .unwrap();
    assert_eq!(hits.len(), 10);
    db.commit(&mut txn).unwrap();
    // Everything survives a checkpoint.
    db.flush_all(txn.now).unwrap();
    let mut txn = db.begin(txn.now);
    assert_eq!(db.get(&mut txn, "t", rids[499]).unwrap()[0], Value::Int(499));
}

#[test]
fn engine_on_noftl_regions_backend() {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::paper_defaults()));
    let placement = PlacementConfig::traditional(8, ["t".to_string(), "t_pk".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
    let db =
        Database::open(backend, DatabaseConfig { buffer_pages: 64, ..Default::default() }).unwrap();
    exercise(&db);
    // The flash device really saw traffic (writes always reach flash via
    // the flushers; reads may be absorbed by the buffer pool at this size).
    let stats = device.stats();
    assert!(stats.page_programs > 0);
    assert!(stats.total_ops() > 0);
}

#[test]
fn engine_on_legacy_ftl_block_device() {
    // The same engine and workload, but through the conventional I/O path:
    // block device -> FTL -> flash.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let ssd = Arc::new(FtlSsd::new(Arc::clone(&device), FtlConfig::enterprise()));
    let backend = Arc::new(BlockBackend::new(ssd.clone(), 32));
    let db =
        Database::open(backend, DatabaseConfig { buffer_pages: 64, ..Default::default() }).unwrap();
    exercise(&db);
    assert!(ssd.stats().host_writes > 0);
    assert!(device.stats().page_programs > 0);
}

#[test]
fn noftl_and_ftl_share_one_native_device_interface() {
    // Both flash management layers run against the *same* NandDevice type
    // and produce comparable statistics — the property that makes the
    // paper's comparison meaningful.
    let geometry = FlashGeometry::small_test();
    let dev_a = Arc::new(DeviceBuilder::new(geometry).build());
    let dev_b = Arc::new(DeviceBuilder::new(geometry).build());
    let noftl = NoFtl::with_single_region(dev_a.clone(), NoFtlConfig::paper_defaults()).0;
    let ssd = FtlSsd::new(
        Arc::clone(&dev_b),
        FtlConfig { overprovisioning: 0.3, ..FtlConfig::consumer() },
    );

    let obj = {
        let rid = noftl.region_ids()[0];
        noftl.create_object("o", rid).unwrap()
    };
    let data = vec![9u8; 4096];
    let mut ta = SimTime::ZERO;
    let mut tb = SimTime::ZERO;
    use noftl_regions::ftl::BlockDevice;
    for i in 0..200u64 {
        ta = noftl.write(obj, i % 50, &data, ta).unwrap();
        tb = ssd.write(i % 50, &data, tb).unwrap();
    }
    let a = dev_a.stats();
    let b = dev_b.stats();
    assert_eq!(a.page_programs, 200);
    assert_eq!(b.page_programs, 200);
    // Both experienced the same host write pattern; wear summaries are
    // available from the same interface.
    assert!(dev_a.wear_summary().total_erases <= dev_b.wear_summary().total_erases + 50);
}
