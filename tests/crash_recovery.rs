//! Crash-consistency acceptance tests.
//!
//! The property test sweeps 50 random power-cut instants across a mixed
//! TPC-C-ish workload (inserts, updates, deletes, rollbacks over an
//! indexed table with checkpoints and WAL truncations firing mid-run).
//! After every cut the device is rebooted from its snapshot, the storage
//! manager remounted (`NoFtl::mount`) and the database recovered
//! (`Database::recover`); the harness then verifies that
//!
//! * reads return only fully-committed data — no torn pages, no half
//!   transactions — with the single in-flight commit allowed to be either
//!   fully present or fully absent;
//! * no committed write is lost;
//! * the remounted manager exposes region/object state identical to the
//!   pre-crash instance (checkpoint + WAL tail).

mod common;

use common::{property_rounds, splitmix};
use noftl_regions::dbms::crash_harness::{run_crash_cycle, CrashHarnessConfig};
use noftl_regions::dbms::{Database, DatabaseConfig, NoFtlBackend};
use noftl_regions::flash::{
    DeviceBuilder, DeviceSnapshot, FlashGeometry, NandDevice, SimTime, TimingModel,
};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig, PlacementPolicyKind};
use std::sync::Arc;

#[test]
fn fifty_random_power_cuts_recover_committed_data_only() {
    let rounds = property_rounds(50);
    let mut rng = 0xDEAD_BEEFu64;
    let mut committed_total = 0u64;
    let mut in_flight_survivals = 0u64;
    let mut torn_discards = 0u64;
    for round in 0..rounds {
        let cfg = CrashHarnessConfig {
            txns: 80,
            // Vary the workload itself every few rounds so the cuts do not
            // all land in identical histories.
            seed: 0xC0FFEE ^ (round / 5),
            // Alternate the placement policy so both RoundRobin and
            // QueueAware are covered by the tier-1 sweep (odd rounds force
            // QueueAware; even rounds keep the default, which honours the
            // NOFTL_PLACEMENT env toggle).
            placement: if round % 2 == 1 {
                PlacementPolicyKind::QueueAware
            } else {
                CrashHarnessConfig::default().placement
            },
            ..CrashHarnessConfig::default()
        };
        let fraction = (splitmix(&mut rng) % 1_000) as f64 / 1_000.0;
        let outcome = run_crash_cycle(&cfg, fraction)
            .unwrap_or_else(|e| panic!("round {round} (fraction {fraction:.3}) failed: {e}"));
        committed_total += outcome.committed_txns;
        in_flight_survivals += u64::from(outcome.in_flight_survived);
        torn_discards += outcome.mount.torn_pages_discarded;
        // The mount always replays a checkpoint (setup takes one) and the
        // recovered table view is bounded by the key universe.
        assert!(outcome.mount.checkpoint_seq > 0, "round {round}");
        assert!(outcome.rows_verified <= 32, "round {round}");
    }
    // Across the cuts the workload must have made real progress…
    assert!(
        committed_total > rounds * 10,
        "committed only {committed_total} txns over {rounds} rounds"
    );
    // …and at least some cuts should land mid-operation, producing torn
    // pages that recovery had to discard.
    assert!(torn_discards > 0, "no cut ever tore a page — cuts are not exercising the device");
    println!(
        "{rounds} cuts: {committed_total} committed txns, {torn_discards} torn pages discarded, \
         {in_flight_survivals} in-flight commits survived"
    );
}

#[test]
fn device_image_file_roundtrip_reboots_the_full_stack() {
    // One cycle with the snapshot persisted to a file-backed image (the
    // "pull the SSD, image it, boot the image" path).
    let cfg = CrashHarnessConfig { txns: 60, image_file: true, ..CrashHarnessConfig::default() };
    let outcome = run_crash_cycle(&cfg, 0.42).expect("file-backed reboot cycle");
    assert!(outcome.committed_txns > 0);
    assert_eq!(outcome.recovery.tables_recovered, 1);
    assert_eq!(outcome.recovery.indexes_recovered, 1);
}

#[test]
fn snapshot_restore_preserves_wear_and_bad_blocks() {
    // DeviceSnapshot round-trip through encode/decode at the facade level.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::default());
    let rid = noftl
        .create_region(noftl_regions::noftl::RegionSpec::named("rg").with_die_count(2))
        .unwrap();
    let obj = noftl.create_object("t", rid).unwrap();
    let mut t = SimTime::ZERO;
    for p in 0..32u64 {
        t = noftl.write(obj, p % 8, &vec![p as u8; 4096], t).unwrap();
    }
    noftl.checkpoint(t).unwrap();
    let snap = device.snapshot();
    let decoded = DeviceSnapshot::decode(&snap.encode()).unwrap();
    assert_eq!(decoded.blocks, snap.blocks);
    assert_eq!(decoded.wear.total_erases, snap.wear.total_erases);
    let device2 = Arc::new(NandDevice::from_snapshot(&decoded, TimingModel::mlc_2015()).unwrap());
    let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
    assert_eq!(report.checkpoint_seq, 1);
    for p in 0..8u64 {
        let expected = 24 + p; // last round of writes wins
        assert_eq!(noftl2.read(obj, p, report.completed_at).unwrap().0, vec![expected as u8; 4096]);
    }
}

#[test]
fn recovery_reports_scale_with_wal_length() {
    // Longer WAL tails require more redo work — the relationship the
    // criterion bench (`benches/recovery.rs`) measures.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(8, ["t".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
    let config = DatabaseConfig {
        buffer_pages: 256,
        redo_logging: true,
        wal_segment_pages: 100_000, // no truncation: the tail only grows
        ..DatabaseConfig::default()
    };
    let db = Database::open(backend, config).unwrap();
    db.create_table(
        "t",
        noftl_regions::dbms::Schema::new(vec![
            ("k", noftl_regions::dbms::ColumnType::Int),
            ("v", noftl_regions::dbms::ColumnType::Int),
        ]),
        SimTime::ZERO,
    )
    .unwrap();
    let mut t = db.checkpoint(SimTime::ZERO).unwrap();
    let mut redo_applied = Vec::new();
    for chunk in 0..3 {
        for i in 0..20i64 {
            let mut txn = db.begin(t);
            use noftl_regions::dbms::Value;
            db.insert(&mut txn, "t", &vec![Value::Int(chunk * 20 + i), Value::Int(0)], &[])
                .unwrap();
            db.commit(&mut txn).unwrap();
            t = txn.now;
        }
        // Reboot + recover after each chunk; the WAL tail has grown, so
        // redo replays more images.
        let snap = device.snapshot();
        let device2 = Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap());
        let (noftl2, mount) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        let backend2 = Arc::new(NoFtlBackend::attach(Arc::new(noftl2), &placement).unwrap());
        let (_db2, report) = Database::recover(backend2, config, mount.completed_at).unwrap();
        redo_applied.push(report.redo_pages_applied);
    }
    assert!(
        redo_applied[0] < redo_applied[1] && redo_applied[1] < redo_applied[2],
        "redo work must grow with WAL length: {redo_applied:?}"
    );
}
