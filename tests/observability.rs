//! Acceptance tests for the cross-layer observability layer.
//!
//! * The Chrome trace emitted after a mixed workload must be valid
//!   `trace_event` JSON (the `observe` example's output is loadable).
//! * Tracing must be a pure observer: a crash-harness cycle run with the
//!   tracer on reports byte-identical recovery to the same cycle with it
//!   off.
//! * `Database::metrics_snapshot` exposes one registry spanning every
//!   layer of the stack.

use std::sync::Arc;

use noftl_regions::dbms::crash_harness::{run_crash_cycle, CrashHarnessConfig};
use noftl_regions::dbms::{ColumnType, Database, DatabaseConfig, NoFtlBackend, Schema, Value};
use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::kv::{KvConfig, KvStore};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_regions::obs::validate_chrome_trace;
use noftl_regions::{dump, obs};

fn stack() -> (Arc<NoFtl>, u32) {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
    );
    device.metrics().tracer().set_enabled(true);
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    // `small_test` has 4 dies; take 2 so the KV test can claim the rest.
    let rid = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
    let obj = noftl.create_object("t", rid).unwrap();
    (noftl, obj)
}

#[test]
fn chrome_trace_from_a_mixed_workload_is_valid() {
    let (noftl, obj) = stack();
    let batch: Vec<(u32, u64, Vec<u8>)> =
        (0..32u64).map(|p| (obj, p, vec![p as u8; 4096])).collect();
    let mut now = noftl.write_windowed(&batch, SimTime::ZERO, 8).unwrap();
    for p in 0..32u64 {
        let handle = noftl.submit_read(obj, p, now).unwrap();
        let (_, done) = noftl.wait_io(handle).unwrap();
        now = now.max(done);
    }
    let trace = dump::chrome_trace(noftl.metrics());
    let events = validate_chrome_trace(&trace).expect("trace parses as trace_event JSON");
    assert!(events > 0, "the workload must have produced spans");
    // Queue spans and flush-window spans both appear.
    assert!(trace.contains("\"cat\": \"flash.queue\""));
    assert!(trace.contains("\"name\": \"write_window\""));
}

#[test]
fn kv_spans_and_histograms_reach_the_registry() {
    let (noftl, _obj) = stack();
    let kv_rid = noftl.create_region(RegionSpec::named("rgKv").with_die_count(2)).unwrap();
    let config = KvConfig { memtable_bytes: 8 * 1024, ..KvConfig::default() };
    let (store, mut t) =
        KvStore::create(Arc::clone(&noftl), kv_rid, "obs", config, SimTime::ZERO).unwrap();
    for i in 0..200u64 {
        let key = format!("k{i:05}").into_bytes();
        t = store.put(&key, &[b'v'; 64], t).unwrap();
    }
    let _ = store.flush(t).unwrap();
    let snap = noftl.metrics_snapshot();
    let puts = snap.histogram("kv.put.latency_ns").expect("put histogram registered");
    assert_eq!(puts.count, 200);
    assert!(snap.counter("kv.flushes").unwrap_or(0) >= 1);
    let flush = snap.histogram("kv.flush.latency_ns").unwrap();
    assert!(flush.count >= 1 && flush.percentile(0.5) > 0);
    let trace = dump::chrome_trace(noftl.metrics());
    assert!(trace.contains("memtable_flush"));
}

#[test]
fn tracing_never_perturbs_crash_recovery() {
    let base = CrashHarnessConfig { txns: 60, ..CrashHarnessConfig::default() };
    let quiet = run_crash_cycle(&base, 0.5).expect("untraced cycle recovers");
    let traced_cfg = CrashHarnessConfig { trace: true, ..base };
    let traced = run_crash_cycle(&traced_cfg, 0.5).expect("traced cycle recovers");
    assert_eq!(quiet.mount, traced.mount, "mount reports must be identical tracer on/off");
    assert_eq!(quiet.cut_at, traced.cut_at);
    assert_eq!(quiet.committed_txns, traced.committed_txns);
    assert_eq!(quiet.rows_verified, traced.rows_verified);
    assert_eq!(quiet.in_flight_survived, traced.in_flight_survived);
}

#[test]
fn database_metrics_snapshot_spans_every_layer() {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(4, ["t".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
    let db = Database::open(backend, DatabaseConfig::default()).unwrap();
    db.create_table(
        "t",
        Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
        SimTime::ZERO,
    )
    .unwrap();
    let mut now = db.checkpoint(SimTime::ZERO).unwrap();
    for i in 0..20i64 {
        let mut txn = db.begin(now);
        db.insert(&mut txn, "t", &vec![Value::Int(i), Value::Int(i * 3)], &[]).unwrap();
        db.commit(&mut txn).unwrap();
        now = txn.now;
    }
    db.flush_all(now).unwrap();

    let snap = db.metrics_snapshot().expect("the NoFTL backend exposes a registry");
    // Flash layer: programs happened on some die.
    assert!(snap.counters.iter().any(|(name, v)| name.contains("programs") && *v > 0));
    // Queue layer: submissions flowed through.
    assert!(snap.counter("flash.queue.submitted").unwrap_or(0) > 0);
    // WAL layer: every commit forced the log.
    let forces = snap.histogram("dbms.wal.force_ns").expect("wal histogram");
    assert!(forces.count >= 20, "one force per commit, got {}", forces.count);
    // Buffer pool: the explicit flush recorded.
    assert!(snap.histogram("dbms.buffer.flush_ns").map_or(0, |h| h.count) >= 1);
    // The Prometheus rendering covers the same registry.
    let prom = snap.to_prometheus();
    assert!(prom.contains("dbms_wal_force_ns_count"));

    // A disabled registry stops recording but keeps handles valid.
    let registry: &Arc<obs::MetricsRegistry> = noftl.metrics();
    registry.set_enabled(false);
    let before = registry.snapshot().counter("flash.queue.submitted").unwrap_or(0);
    let mut txn = db.begin(now);
    db.insert(&mut txn, "t", &vec![Value::Int(999), Value::Int(0)], &[]).unwrap();
    db.commit(&mut txn).unwrap();
    let after = registry.snapshot().counter("flash.queue.submitted").unwrap_or(0);
    assert_eq!(before, after, "a disabled registry must not record");
}
