//! Smoke test for the `noftl-regions` facade crate: every workspace member
//! must be reachable through the root crate's re-exports (`flash`, `ftl`,
//! `noftl`, `dbms`, `tpcc`, `workload`, `bench`), and a tiny device must
//! work end to end when driven exclusively through those paths.

use std::sync::Arc;

use noftl_regions::dbms::value::{composite_key, Value};
use noftl_regions::dbms::{ColumnType, Database, DatabaseConfig, NoFtlBackend, Schema};
use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};

#[test]
fn tiny_device_through_facade_reexports() {
    // flash: build a small native device through the re-exported builder.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
    );
    assert!(device.geometry().total_dies() >= 2);

    // noftl: carve a region and write/read raw object pages.
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::paper_defaults());
    let region = noftl.create_region(RegionSpec::named("rgSmoke").with_die_count(2)).unwrap();
    let obj = noftl.create_object("smoke", region).unwrap();
    let mut now = SimTime::ZERO;
    for page in 0..8u64 {
        now = noftl.write(obj, page, &vec![page as u8; 4096], now).unwrap();
    }
    let (data, _) = noftl.read(obj, 5, now).unwrap();
    assert_eq!(data, vec![5u8; 4096]);

    // noftl::kv: the NoFTL-KV layer round-trips through the facade too.
    let noftl = Arc::new(noftl);
    let kv_region = noftl.create_region(RegionSpec::named("rgKv").with_die_count(2)).unwrap();
    let (kv, kv_t) = noftl_regions::noftl::kv::KvStore::create(
        Arc::clone(&noftl),
        kv_region,
        "smoke",
        noftl_regions::noftl::kv::KvConfig::default(),
        now,
    )
    .unwrap();
    let kv_t = kv.put(b"answer", b"42", kv_t).unwrap();
    let kv_t = kv.flush(kv_t).unwrap();
    assert_eq!(kv.get(b"answer", kv_t).unwrap().0.as_deref(), Some(b"42".as_slice()));

    // dbms: run the storage engine on a NoFTL backend, via the facade only.
    // A fresh device: the manager above already owns the first one's pages.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::paper_defaults()));
    let placement = PlacementConfig::traditional(2, ["t".to_string(), "t_pk".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(noftl, &placement).unwrap());
    let db =
        Database::open(backend, DatabaseConfig { buffer_pages: 32, ..Default::default() }).unwrap();
    let schema = Schema::new(vec![("id", ColumnType::Int), ("note", ColumnType::Str(16))]);
    db.create_table("t", schema, SimTime::ZERO).unwrap();
    db.create_index("t", "t_pk", SimTime::ZERO).unwrap();
    let mut txn = db.begin(SimTime::ZERO);
    for id in 0..20i64 {
        db.insert(
            &mut txn,
            "t",
            &vec![Value::Int(id), Value::Str(format!("r{id}"))],
            &[("t_pk", composite_key(&[id]))],
        )
        .unwrap();
    }
    db.commit(&mut txn).unwrap();
    let mut txn = db.begin(txn.now);
    let (_, rec) = db.index_get(&mut txn, "t", "t_pk", &composite_key(&[7])).unwrap().unwrap();
    assert_eq!(rec[0], Value::Int(7));
}

#[test]
fn remaining_reexports_are_wired() {
    // ftl: the baseline SSD's config is reachable and valid.
    assert!(noftl_regions::ftl::FtlConfig::default().validate().is_ok());

    // tpcc: placement helpers produce the paper's region layout.
    let cfg = noftl_regions::tpcc::placement::figure2(64);
    assert_eq!(cfg.total_dies(), 64);
    assert_eq!(cfg.regions.len(), 6);

    // bench: the experiment harness type is reachable through the facade.
    let exp = noftl_regions::bench::Experiment::figure3_base(
        noftl_regions::tpcc::placement::traditional(8),
        "facade smoke",
    );
    assert_eq!(exp.label, "facade smoke");

    // workload: a YCSB spec generates a deterministic stream through the
    // facade, and the key helpers are reachable.
    let spec = noftl_regions::workload::YcsbSpec::core('A', 10, 20, 7).unwrap();
    let ops: Vec<_> = spec.stream().collect();
    assert_eq!(ops.len(), 20);
    assert_eq!(
        noftl_regions::workload::stream_digest(ops.clone()),
        noftl_regions::workload::stream_digest(ops)
    );
    assert_eq!(noftl_regions::workload::key_bytes(42), b"user000000000042");

    // placement policies: trait, implementations, selector and the die
    // load snapshot are re-exported at the root crate.
    use noftl_regions::{DieLoad, PlacementPolicy, PlacementPolicyKind, QueueAware, RoundRobin};
    let at = noftl_regions::flash::SimTime::ZERO;
    assert_eq!(RoundRobin.probe_order(3, 1, at, &[]), vec![1, 2, 0]);
    let loads = [DieLoad::default(), DieLoad::default()];
    assert_eq!(QueueAware.probe_order(2, 0, at, &loads)[0], 0);
    assert_eq!(PlacementPolicyKind::QueueAware.policy().name(), "queue_aware");
    assert_eq!(PlacementPolicyKind::parse("queue_aware"), Some(PlacementPolicyKind::QueueAware));
}
