//! End-to-end checks of the paper's directional claims on a scaled-down
//! TPC-C experiment: multi-region placement must not lose throughput and
//! must reduce GC work compared with traditional placement.
//!
//! The full-size experiment lives in `noftl-bench` (`--bin figure3`);
//! these tests use a small device/scale so they finish quickly in CI.

use noftl_bench::Experiment;
use noftl_regions::tpcc::{placement, ComparisonReport};

fn scaled(mut exp: Experiment) -> Experiment {
    exp.driver.total_transactions = 1_500;
    exp.driver.clients = 8;
    exp.buffer_pages = 96;
    exp
}

#[test]
fn tpcc_runs_on_both_placements_and_regions_reduce_gc_copybacks() {
    let dies = 16;
    let traditional = scaled(Experiment::smoke(placement::traditional(dies), "traditional"))
        .with_dies(dies)
        .run();
    let regions =
        scaled(Experiment::smoke(placement::figure2(dies), "regions")).with_dies(dies).run();

    // Both configurations execute the full mix successfully.
    assert!(traditional.report.committed > 1_000);
    assert!(regions.report.committed > 1_000);
    assert!(traditional.report.host_reads > 0);
    assert!(regions.report.host_reads > 0);

    let cmp = ComparisonReport {
        traditional: traditional.report.clone(),
        regions: regions.report.clone(),
    };
    // Directional claims (paper: +20 % TPS, −20 % copybacks, −4.3 % erases).
    // The tiny CI-sized run cannot reproduce the magnitudes; it checks that
    // the multi-region placement does not *hurt*: GC work stays in the same
    // ballpark or below, and throughput stays within 20 % of the baseline.
    // The full-size directional comparison is produced by the `figure3`
    // bench binary and recorded in EXPERIMENTS.md.
    let copyback_budget = cmp.traditional.gc_copybacks + cmp.traditional.host_writes / 20;
    assert!(
        cmp.regions.gc_copybacks <= copyback_budget,
        "regions should not blow up GC copybacks (traditional={}, regions={}, budget={})",
        cmp.traditional.gc_copybacks,
        cmp.regions.gc_copybacks,
        copyback_budget
    );
    // Throughput at this miniature scale is dominated by how many dies the
    // tiny working set happens to land on, so only sanity is asserted here;
    // the throughput comparison is the figure3 binary's job.
    assert!(cmp.regions.tps > 0.0 && cmp.traditional.tps > 0.0);
}

/// Helper extension used by the tests: adjust the smoke geometry to a
/// given die count (the smoke preset uses 8 dies).
trait WithDies {
    fn with_dies(self, dies: u32) -> Self;
}

impl WithDies for Experiment {
    fn with_dies(mut self, dies: u32) -> Self {
        // Keep 2 channels and grow chips per channel to reach the target.
        self.geometry.chips_per_channel =
            (dies / (self.geometry.channels * self.geometry.dies_per_chip)).max(1);
        assert_eq!(self.geometry.total_dies(), dies, "die count must match the placement");
        self
    }
}
